"""Tests for the table and figure generators (experiments E4-E7)."""

import pytest

from repro.analysis import (
    comparison_table,
    figure3_series,
    figure4_series,
    figure_series,
    render_series,
    render_table,
    render_theorem3,
    theorem2_check,
    theorem3_table,
)
from repro.errors import AnalysisError


class TestTheorem3Table:
    def test_sampled_rows_match_paper(self):
        rows = theorem3_table(n_values=(3, 5, 10, 20))
        assert [row.n_sites for row in rows] == [3, 5, 10, 20]
        assert all(row.matches for row in rows)

    def test_out_of_range_n_rejected(self):
        with pytest.raises(AnalysisError):
            theorem3_table(n_values=(25,))

    def test_rendering_contains_all_rows(self):
        rows = theorem3_table(n_values=(3, 4))
        text = render_theorem3(rows)
        assert "0.82" in text and "0.67" in text
        assert "yes" in text


class TestTheorem2:
    def test_grid_passes(self):
        rows = theorem2_check(n_values=(3, 5, 8), ratios=(0.2, 1.0, 5.0))
        assert len(rows) == 9
        for _, _, hybrid, dynamic in rows:
            assert hybrid > dynamic


class TestFigures:
    def test_figure3_grid(self):
        series = figure3_series(steps=8)
        assert series.ratios[0] == pytest.approx(0.1)
        assert series.ratios[-1] == pytest.approx(2.0)
        assert set(series.curves) == {"voting", "dynamic", "dynamic-linear", "hybrid"}

    def test_figure4_grid(self):
        series = figure4_series(steps=5)
        assert series.ratios[0] == pytest.approx(2.0)
        assert series.ratios[-1] == pytest.approx(10.0)

    def test_figure3_shape_small_ratios(self):
        # At the left edge dynamic-linear leads the hybrid; by ratio 2.0
        # the hybrid leads (the 0.63 crossover sits inside the figure).
        series = figure3_series(steps=20)
        hybrid = series.curve("hybrid")
        linear = series.curve("dynamic-linear")
        assert linear[0] > hybrid[0]
        assert hybrid[-1] > linear[-1]

    def test_figure4_shape_big_ratios(self):
        # Fig. 4's whole range is beyond the crossover: hybrid leads
        # everywhere and voting trails everywhere.
        series = figure4_series(steps=9)
        hybrid, linear, voting = (
            series.curve("hybrid"), series.curve("dynamic-linear"), series.curve("voting")
        )
        for h, l, v in zip(hybrid, linear, voting):
            assert h > l > v

    def test_normalised_values_are_fractions_of_best(self):
        series = figure4_series(steps=5)
        for curve in series.curves.values():
            assert all(0.0 < value <= 1.0 for value in curve)

    def test_curves_approach_one_at_large_ratios(self):
        series = figure_series("tail", 5, 50.0, 100.0, 3)
        for curve in series.curves.values():
            assert curve[-1] > 0.99

    def test_unknown_curve_rejected(self):
        with pytest.raises(AnalysisError):
            figure3_series(steps=4).curve("paxos")

    def test_too_few_steps_rejected(self):
        with pytest.raises(AnalysisError):
            figure_series("x", 5, 1.0, 2.0, 1)

    def test_render_is_tabular(self):
        text = figure3_series(steps=4).render()
        assert "mu/lambda" in text
        assert "hybrid" in text


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2.0], [30, 4.5]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.0000" in text

    def test_render_table_with_title(self):
        assert render_table(["x"], [[1]], title="T").startswith("T")

    def test_render_series(self):
        text = render_series("r", [1.0, 2.0], {"s": [0.1, 0.2]})
        assert "0.1000" in text

    def test_comparison_table_contains_all_protocols(self):
        text = comparison_table(5, [1.0, 2.0])
        for name in ("voting", "dynamic", "dynamic-linear", "hybrid"):
            assert name in text
