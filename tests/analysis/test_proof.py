"""Tests for the packaged Theorem 3 proof (the full symbolic route)."""

from fractions import Fraction

import pytest

from repro.analysis import PAPER_CROSSOVERS, Theorem3Proof, theorem3_proof
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def proof5():
    return theorem3_proof(5)


class TestProofConstruction:
    def test_crossover_matches_paper(self, proof5):
        assert abs(proof5.crossover - PAPER_CROSSOVERS[5]) <= 0.011

    def test_uniqueness_certified_both_ways(self, proof5):
        assert proof5.descartes_sign_changes == 1
        assert proof5.sturm_positive_roots == 1
        assert proof5.unique

    def test_bracket_is_narrow_and_rational(self, proof5):
        low, high = proof5.bracket
        assert isinstance(low, Fraction) and isinstance(high, Fraction)
        assert high - low <= Fraction(1, 1000)

    def test_self_verification(self, proof5):
        proof5.verify()  # must not raise

    def test_transcript_mentions_the_exhibits(self, proof5):
        text = proof5.transcript()
        assert "Descartes" in text
        assert "Sturm" in text
        assert "0.63" in text

    def test_small_n_rejected(self):
        with pytest.raises(AnalysisError):
            theorem3_proof(2)

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_other_sizes(self, n):
        proof = theorem3_proof(n)
        proof.verify()
        assert abs(proof.crossover - PAPER_CROSSOVERS[n]) <= 0.011


class TestTamperDetection:
    def test_verify_rejects_a_shifted_bracket(self, proof5):
        tampered = Theorem3Proof(
            n_sites=proof5.n_sites,
            hybrid=proof5.hybrid,
            linear=proof5.linear,
            difference_numerator=proof5.difference_numerator,
            descartes_sign_changes=proof5.descartes_sign_changes,
            sturm_positive_roots=proof5.sturm_positive_roots,
            bracket=(Fraction(2), Fraction(3)),  # both above the crossover
        )
        with pytest.raises(AnalysisError):
            tampered.verify()

    def test_verify_rejects_a_wrong_polynomial(self, proof5):
        from repro.ratfunc import X

        tampered = Theorem3Proof(
            n_sites=proof5.n_sites,
            hybrid=proof5.hybrid,
            linear=proof5.linear,
            difference_numerator=X + 1,
            descartes_sign_changes=proof5.descartes_sign_changes,
            sturm_positive_roots=proof5.sturm_positive_roots,
            bracket=proof5.bracket,
        )
        with pytest.raises(AnalysisError):
            tampered.verify()
