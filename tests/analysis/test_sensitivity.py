"""Tests for the availability-measure sensitivity study (experiment A3)."""

import pytest

from repro.analysis import (
    traditional_availability,
    traditional_crossover,
)
from repro.errors import AnalysisError
from repro.markov import availability, expected_blocked_fraction, chain_for


class TestTraditionalMeasure:
    def test_matches_blocked_fraction_complement(self):
        for name in ("dynamic", "dynamic-linear", "hybrid"):
            for ratio in (0.5, 2.0):
                value = traditional_availability(name, 5, ratio)
                blocked = expected_blocked_fraction(chain_for(name, 5), ratio)
                assert value == pytest.approx(1.0 - blocked, abs=1e-12)

    def test_voting_closed_form(self):
        from repro.quorums import majority_availability, uniform_up_probability

        for ratio in (0.5, 2.0):
            assert traditional_availability("voting", 5, ratio) == pytest.approx(
                majority_availability(
                    5, uniform_up_probability(ratio), measure="traditional"
                )
            )

    def test_dominates_the_site_measure(self):
        # Existence of a quorum is necessary for a successful arrival.
        for name in ("voting", "dynamic", "dynamic-linear", "hybrid"):
            for ratio in (0.5, 1.0, 3.0):
                assert traditional_availability(
                    name, 5, ratio
                ) >= availability(name, 5, ratio) - 1e-12

    def test_unknown_protocol_rejected(self):
        with pytest.raises(AnalysisError):
            traditional_availability("primary-copy", 5, 1.0)


class TestMeasureSensitivityFindings:
    def test_theorem2_is_measure_robust(self):
        for n in (3, 5, 8):
            for ratio in (0.2, 1.0, 5.0):
                assert traditional_availability(
                    "hybrid", n, ratio
                ) > traditional_availability("dynamic", n, ratio)

    def test_theorem3_is_not_measure_robust(self):
        # Under the traditional measure dynamic-linear wins at EVERY ratio:
        # its one-site distinguished partitions count fully.  The paper's
        # crossover exists only under the site measure.
        for n in (3, 5, 8):
            for ratio in (0.1, 0.63, 1.0, 2.0, 10.0):
                assert traditional_availability(
                    "dynamic-linear", n, ratio
                ) > traditional_availability("hybrid", n, ratio)

    def test_no_traditional_crossover_for_theorem3_pair(self):
        with pytest.raises(AnalysisError, match="do not cross"):
            traditional_crossover("hybrid", "dynamic-linear", 5)

    def test_dynamic_dominates_voting_under_traditional(self):
        # Another ordering flip: under the traditional measure dynamic
        # voting dominates static voting at EVERY ratio (its quorums are a
        # superset family), where the site measure shows a crossing band.
        for ratio in (0.1, 0.5, 1.0, 2.0, 20.0):
            assert traditional_availability(
                "dynamic", 5, ratio
            ) > traditional_availability("voting", 5, ratio)
        with pytest.raises(AnalysisError):
            traditional_crossover("dynamic", "voting", 5)

    def test_crossover_finder_works_where_a_crossing_exists(self):
        # Optimal-candidate vs hybrid at n=5 flips sign inside (0.5, 1.0)
        # under the traditional measure.
        root = traditional_crossover("optimal-candidate", "hybrid", 5)
        assert 0.5 < root < 1.0
