"""The analysis layer must ride the batched grid solver (ISSUE 5).

``figure3_series(20)`` used to issue 20 per-point linear solves per
chain-based curve; with the batched router it must issue exactly one
stacked solve per chain protocol (or one Horner sweep when the symbolic
solution is already cached) -- asserted here via the ``markov.solve.*``
counters rather than by timing.
"""

import pytest

from repro.analysis import figure3_series, figure4_series, numeric_crossover
from repro.markov import availability_symbolic, clear_symbolic_cache
from repro.markov.availability import _chain
from repro.obs.metrics import MetricsRegistry, use

#: figure protocols minus voting, which has a closed form and never solves.
CHAIN_CURVES = ("dynamic", "dynamic-linear", "hybrid")


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_symbolic_cache()
    _chain.cache_clear()
    yield
    clear_symbolic_cache()


def _solve_counters(registry):
    return {
        key: value
        for key, value in registry.snapshot().items()
        if key.startswith("markov.solve") and value["type"] == "counter"
    }


class TestFigureRouting:
    def test_figure3_one_batched_solve_per_chain_protocol(self):
        registry = MetricsRegistry()
        with use(registry):
            figure3_series(20)
        counters = _solve_counters(registry)
        assert counters["markov.solve.batched"]["value"] == len(CHAIN_CURVES)
        assert "markov.solve.numeric" not in counters
        assert registry.snapshot()["markov.solve.grid_size"]["sum"] == 20 * len(
            CHAIN_CURVES
        )

    def test_figure4_batched_as_well(self):
        registry = MetricsRegistry()
        with use(registry):
            figure4_series(17)
        counters = _solve_counters(registry)
        assert counters["markov.solve.batched"]["value"] == len(CHAIN_CURVES)
        assert "markov.solve.numeric" not in counters

    def test_figure3_rides_horner_when_symbolic_cached(self):
        for protocol in CHAIN_CURVES:
            availability_symbolic(protocol, 5)
        registry = MetricsRegistry()
        with use(registry):
            figure3_series(20)
        counters = _solve_counters(registry)
        assert counters["markov.solve.horner"]["value"] == len(CHAIN_CURVES)
        assert "markov.solve.batched" not in counters

    def test_figure_values_unchanged_by_routing(self):
        # The batched figure must be bit-compatible with the per-point
        # route: same solver, same arithmetic, merely stacked.
        from repro.markov import availability, up_probability

        series = figure3_series(20)
        for protocol in CHAIN_CURVES:
            for ratio, value in zip(series.ratios, series.curve(protocol)):
                expected = availability(protocol, 5, ratio) / up_probability(ratio)
                assert abs(value - expected) <= 1e-12


class TestCrossoverRouting:
    def test_numeric_crossover_scan_is_batched(self):
        registry = MetricsRegistry()
        with use(registry):
            root = numeric_crossover("hybrid", "dynamic-linear", 5)
        assert abs(root - 0.63) <= 0.011
        counters = _solve_counters(registry)
        assert counters["markov.solve.batched"]["value"] == 2
        # Brent refinement still evaluates per point, but only around the
        # bracket -- far fewer than the 201-point scan.
        numeric = counters.get("markov.solve.numeric", {"value": 0})["value"]
        assert numeric < 100
