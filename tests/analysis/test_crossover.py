"""Tests for crossover location and exact certification (Theorem 3 core)."""

from fractions import Fraction

import pytest

from repro.analysis import (
    PAPER_CROSSOVERS,
    certified_crossover,
    numeric_crossover,
    uniqueness_certificate,
)
from repro.errors import AnalysisError
from repro.markov import availability_exact


class TestNumericCrossover:
    def test_n5_matches_paper(self):
        root = numeric_crossover("hybrid", "dynamic-linear", 5)
        assert root == pytest.approx(0.63, abs=0.011)

    def test_no_crossing_raises(self):
        # hybrid > dynamic everywhere (Theorem 2): no sign change.
        with pytest.raises(AnalysisError):
            numeric_crossover("hybrid", "dynamic", 5)

    def test_voting_crosses_dynamic_at_five_sites(self):
        # At five sites dynamic voting overtakes static voting at larger
        # ratios (visible in the Figs. 3-4 data).
        root = numeric_crossover("dynamic", "voting", 5)
        assert 0.1 < root < 5.0


class TestCertifiedCrossover:
    def test_bracket_is_exactly_verified(self):
        result = certified_crossover("hybrid", "dynamic-linear", 5)
        assert result.verified
        low_diff = availability_exact("hybrid", 5, result.low) - availability_exact(
            "dynamic-linear", 5, result.low
        )
        high_diff = availability_exact("hybrid", 5, result.high) - availability_exact(
            "dynamic-linear", 5, result.high
        )
        assert low_diff < 0 < high_diff

    def test_bracket_width_matches_decimals(self):
        result = certified_crossover("hybrid", "dynamic-linear", 4, decimals=2)
        assert result.high - result.low <= Fraction(2, 100)

    def test_downward_crossing_detected(self):
        # dynamic-linear over hybrid crosses downward; the API demands the
        # ascending orientation.
        with pytest.raises(AnalysisError, match="swap"):
            certified_crossover("dynamic-linear", "hybrid", 5)

    def test_agrees_with_paper_helper(self):
        result = certified_crossover("hybrid", "dynamic-linear", 3)
        assert result.agrees_with_paper()

    def test_agrees_with_paper_rejects_unknown_n(self):
        result = certified_crossover("hybrid", "dynamic-linear", 5)
        object.__setattr__(result, "n_sites", 99)
        with pytest.raises(AnalysisError):
            result.agrees_with_paper()


class TestPaperTableSpotChecks:
    """Certify a representative sample here (the benchmark does all 18)."""

    @pytest.mark.parametrize("n", [3, 4, 5, 8, 12])
    def test_crossover_matches_paper(self, n):
        result = certified_crossover("hybrid", "dynamic-linear", n)
        assert result.agrees_with_paper(), (n, result.value, PAPER_CROSSOVERS[n])


class TestUniqueness:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_single_positive_crossing(self, n):
        certificate = uniqueness_certificate("hybrid", "dynamic-linear", n)
        assert certificate["positive_roots_sturm"] == 1
        assert certificate["unique"]

    def test_descartes_count_is_one_at_n5(self):
        # The paper's exact argument: one coefficient sign change.
        certificate = uniqueness_certificate("hybrid", "dynamic-linear", 5)
        assert certificate["descartes_sign_changes"] == 1
