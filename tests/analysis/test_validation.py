"""Tests for the validation harnesses (experiments E8, E9)."""

from fractions import Fraction

import pytest

from repro.analysis import (
    derived_chain_agreement,
    grid_agreement,
    lumped_chain_agreement,
    montecarlo_agreement,
    paper_grid,
    solver_agreement,
)
from repro.errors import AnalysisError


class TestPaperGrid:
    def test_full_grid_has_200_points(self):
        grid = paper_grid()
        assert len(grid) == 200
        assert grid[0] == Fraction(1, 10)
        assert grid[-1] == Fraction(20)

    def test_custom_grid(self):
        grid = paper_grid(Fraction(1), Fraction(2), Fraction(1, 2))
        assert grid == [Fraction(1), Fraction(3, 2), Fraction(2)]


class TestGridAgreement:
    @pytest.mark.parametrize("name", ["voting", "dynamic", "hybrid"])
    def test_float_and_exact_paths_agree(self, name):
        ratios = paper_grid(Fraction(1, 2), Fraction(5), Fraction(1, 2))
        result = grid_agreement(name, 5, ratios)
        assert result.ok()
        assert result.points == len(ratios)

    def test_max_error_reported(self):
        result = grid_agreement("dynamic-linear", 4, [Fraction(1)])
        assert result.max_abs_error < 1e-12


class TestMonteCarloAgreement:
    def test_agreement_report(self):
        report = montecarlo_agreement(
            "dynamic", 4, 1.0, replicates=4, events=6_000, seed=7
        )
        assert abs(report["analytic"] - report["montecarlo"]) < 0.02

    def test_disagreement_raises(self, monkeypatch):
        # Force a chain/protocol mismatch by lying about the analytic
        # value: the harness must raise rather than report agreement.
        from repro.analysis import validation
        from repro.errors import AnalysisError

        monkeypatch.setattr(
            validation, "availability", lambda name, n, ratio: 0.999
        )
        with pytest.raises(AnalysisError, match="disagrees"):
            montecarlo_agreement(
                "dynamic", 4, 1.0, replicates=4, events=4_000, seed=7
            )

    def test_band_rejects_distant_values(self):
        from repro.sim import MonteCarloResult

        result = MonteCarloResult("x", 3, 1.0, 0.5, 0.001, 4, 100)
        assert not result.agrees_with(0.9)
        assert result.agrees_with(0.5005)


class TestDerivedChainAgreement:
    @pytest.mark.parametrize("name", ["dynamic", "dynamic-linear", "hybrid"])
    def test_derived_matches_hand_built(self, name):
        report = derived_chain_agreement(name, 4)
        assert report["max_abs_error"] < 1e-10
        assert report["derived_states"] > 0

    def test_modified_hybrid_agreement(self):
        report = derived_chain_agreement("modified-hybrid", 4)
        assert report["max_abs_error"] < 1e-10


class TestLargeNValidation:
    def test_solver_agreement_at_n25(self):
        result = solver_agreement("dynamic", 25, [0.5, 1.0, 2.0, 8.0])
        assert result.n_sites == 25
        assert result.points == 4
        assert result.ok(1e-12)

    def test_lumped_chain_agreement_at_n25(self):
        result = lumped_chain_agreement("hybrid", 25)
        assert result.n_sites == 25
        assert result.ok(1e-12)

    def test_lumped_chain_agreement_needs_a_signature(self):
        with pytest.raises(AnalysisError, match="no lumping signature"):
            lumped_chain_agreement("primary-site-voting", 5)

    def test_solver_agreement_defaults_to_the_paper_grid(self):
        result = solver_agreement("voting", 25)
        assert result.points == 200
        assert result.ok(1e-12)
