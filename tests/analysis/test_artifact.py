"""Tests for the machine-readable artifact export."""

import json

import pytest

from repro.analysis import ARTIFACT_VERSION, collect_results, write_artifact


@pytest.fixture(scope="module")
def results():
    return collect_results(n_values=(3, 4, 5), figure_steps=5)


class TestCollect:
    def test_version_stamp(self, results):
        assert results["artifact_version"] == ARTIFACT_VERSION

    def test_figure1_narrative_encoded(self, results):
        assert results["figure1"]["hybrid"]["4.0"] == ["BC"]
        assert results["figure1"]["dynamic-linear"]["4.0"] == ["A"]
        assert results["figure1"]["voting"]["2.0"] == []

    def test_state_counts(self, results):
        assert results["figure2_state_counts"] == {"3": 4, "4": 7, "5": 10}

    def test_theorem3_brackets_are_exact_fraction_strings(self, results):
        from fractions import Fraction

        for n, row in results["theorem3"].items():
            low, high = (Fraction(text) for text in row["bracket"])
            assert low < high
            assert abs(row["measured"] - row["paper"]) <= 0.011

    def test_figures_have_all_curves(self, results):
        for label in ("figure3", "figure4"):
            assert set(results[label]["curves"]) == {
                "voting", "dynamic", "dynamic-linear", "hybrid",
            }
            assert len(results[label]["ratios"]) == 5

    def test_measure_sensitivity_shows_the_flip(self, results):
        snapshot = results["measure_sensitivity"]["4.0"]
        assert snapshot["site"]["hybrid"] > snapshot["site"]["dynamic-linear"]
        assert (
            snapshot["traditional"]["dynamic-linear"]
            > snapshot["traditional"]["hybrid"]
        )

    def test_endurance_identity(self, results):
        values = results["mean_time_to_blocking"]
        assert values["hybrid"] == pytest.approx(values["dynamic"], rel=1e-9)


class TestWrite:
    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "artifact.json"
        written = write_artifact(path, n_values=(3,), figure_steps=3)
        loaded = json.loads(path.read_text())
        assert loaded["artifact_version"] == written["artifact_version"]
        assert loaded["theorem3"]["3"]["paper"] == 0.82
