"""Unit tests for the Monte-Carlo availability estimator."""

import math
import statistics

import pytest

from repro.errors import SimulationError
from repro.sim import RunningCI, estimate_availability


class TestEstimator:
    def test_result_fields(self):
        result = estimate_availability(
            "voting", 3, 1.0, replicates=3, events=800, seed=1
        )
        assert result.protocol == "voting"
        assert result.n_sites == 3
        assert 0.0 < result.mean < 1.0
        assert result.stderr > 0.0

    def test_reproducible_with_seed(self):
        a = estimate_availability("dynamic", 4, 1.0, replicates=3, events=600, seed=9)
        b = estimate_availability("dynamic", 4, 1.0, replicates=3, events=600, seed=9)
        assert a.mean == b.mean
        assert a.stderr == b.stderr

    def test_different_seeds_differ(self):
        a = estimate_availability("dynamic", 4, 1.0, replicates=3, events=600, seed=1)
        b = estimate_availability("dynamic", 4, 1.0, replicates=3, events=600, seed=2)
        assert a.mean != b.mean

    def test_matches_analytic_value(self):
        from repro.markov import availability

        result = estimate_availability(
            "hybrid", 5, 1.0, replicates=6, events=8_000, seed=33
        )
        assert result.agrees_with(availability("hybrid", 5, 1.0))

    def test_custom_factory(self):
        from repro.core import DynamicVotingProtocol

        result = estimate_availability(
            DynamicVotingProtocol, 3, 2.0, replicates=3, events=500, seed=4
        )
        assert result.mean > 0

    def test_confidence_interval_brackets_mean(self):
        result = estimate_availability(
            "voting", 3, 1.0, replicates=4, events=500, seed=5
        )
        low, high = result.confidence_interval()
        assert low < result.mean < high

    def test_too_few_replicates_rejected(self):
        with pytest.raises(SimulationError):
            estimate_availability("voting", 3, 1.0, replicates=1, events=100)

    def test_nonpositive_events_rejected(self):
        with pytest.raises(SimulationError):
            estimate_availability("voting", 3, 1.0, replicates=2, events=0)


class TestRunningCI:
    """The Welford replacement for the O(R^2) running-CI replay."""

    def test_matches_batch_statistics_at_every_prefix(self):
        import random

        rng = random.Random(7)
        values = [rng.uniform(0.2, 0.8) for _ in range(200)]
        running = RunningCI()
        for count, value in enumerate(values, start=1):
            running.update(value)
            prefix = values[:count]
            assert running.count == count
            assert running.mean == pytest.approx(
                statistics.fmean(prefix), rel=1e-12
            )
            if count >= 2:
                expected = statistics.stdev(prefix) / math.sqrt(count)
                assert running.stderr() == pytest.approx(expected, rel=1e-12)
                assert running.half_width() == pytest.approx(
                    1.96 * expected, rel=1e-12
                )

    def test_undefined_before_two_observations(self):
        running = RunningCI()
        assert running.stderr() is None
        assert running.half_width() is None
        running.update(0.5)
        assert running.half_width() is None

    def test_ci_half_width_gauge_pins_final_stderr(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        result = estimate_availability(
            "hybrid", 4, 1.0, replicates=6, events=800, seed=12,
            metrics=registry,
        )
        half_width = registry.snapshot()["mc.ci.half_width"]["value"]
        # The last replay iteration folds in every replicate, so the gauge
        # must equal the result's own CI half-width.
        assert half_width == pytest.approx(1.96 * result.stderr, rel=1e-9)


def _hybrid_factory(sites):
    """Module-level (hence picklable) protocol factory for the pool tests."""
    from repro.core import HybridProtocol

    return HybridProtocol(sites)


class TestParallelReplicates:
    """The docs/PERFORMANCE.md contract: workers never change results."""

    KWARGS = dict(replicates=4, events=2_000, seed=2026)

    def test_parallel_bitwise_equals_serial(self):
        serial = estimate_availability("hybrid", 5, 1.0, **self.KWARGS, workers=1)
        parallel = estimate_availability("hybrid", 5, 1.0, **self.KWARGS, workers=2)
        assert parallel == serial  # bitwise: frozen dataclass of floats

    def test_parallel_metrics_snapshot_equals_serial(self):
        from repro.obs.metrics import MetricsRegistry

        snapshots = []
        for workers in (1, 2):
            registry = MetricsRegistry()
            estimate_availability(
                "dynamic", 4, 1.0, **self.KWARGS, metrics=registry, workers=workers
            )
            snapshots.append(registry.snapshot())
        assert snapshots[0] == snapshots[1]

    def test_workers_gauge_is_wall_clock_only(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        estimate_availability(
            "voting", 3, 1.0, **self.KWARGS, metrics=registry, workers=2
        )
        assert "mc.workers" not in registry.snapshot()
        wall = registry.wall_clock_snapshot()
        assert wall["mc.workers"]["value"] == 2
        assert "mc.parallel.speedup" in wall

    def test_env_variable_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        from_env = estimate_availability("voting", 3, 1.0, **self.KWARGS)
        monkeypatch.delenv("REPRO_WORKERS")
        serial = estimate_availability("voting", 3, 1.0, **self.KWARGS)
        assert from_env == serial

    def test_picklable_factory_parallel(self):
        serial = estimate_availability(
            _hybrid_factory, 4, 1.0, **self.KWARGS, workers=1
        )
        parallel = estimate_availability(
            _hybrid_factory, 4, 1.0, **self.KWARGS, workers=2
        )
        assert parallel == serial

    def test_unpicklable_factory_rejected_up_front(self):
        from repro.core import HybridProtocol

        factory = lambda sites: HybridProtocol(sites)  # noqa: E731
        with pytest.raises(SimulationError, match="picklable"):
            estimate_availability(factory, 3, 1.0, **self.KWARGS, workers=2)

    def test_unpicklable_factory_fine_when_serial(self):
        from repro.core import HybridProtocol

        factory = lambda sites: HybridProtocol(sites)  # noqa: E731
        result = estimate_availability(factory, 3, 1.0, **self.KWARGS, workers=1)
        assert 0.0 < result.mean < 1.0
