"""Unit tests for the Monte-Carlo availability estimator."""

import pytest

from repro.errors import SimulationError
from repro.sim import estimate_availability


class TestEstimator:
    def test_result_fields(self):
        result = estimate_availability(
            "voting", 3, 1.0, replicates=3, events=800, seed=1
        )
        assert result.protocol == "voting"
        assert result.n_sites == 3
        assert 0.0 < result.mean < 1.0
        assert result.stderr > 0.0

    def test_reproducible_with_seed(self):
        a = estimate_availability("dynamic", 4, 1.0, replicates=3, events=600, seed=9)
        b = estimate_availability("dynamic", 4, 1.0, replicates=3, events=600, seed=9)
        assert a.mean == b.mean
        assert a.stderr == b.stderr

    def test_different_seeds_differ(self):
        a = estimate_availability("dynamic", 4, 1.0, replicates=3, events=600, seed=1)
        b = estimate_availability("dynamic", 4, 1.0, replicates=3, events=600, seed=2)
        assert a.mean != b.mean

    def test_matches_analytic_value(self):
        from repro.markov import availability

        result = estimate_availability(
            "hybrid", 5, 1.0, replicates=6, events=8_000, seed=33
        )
        assert result.agrees_with(availability("hybrid", 5, 1.0))

    def test_custom_factory(self):
        from repro.core import DynamicVotingProtocol

        result = estimate_availability(
            DynamicVotingProtocol, 3, 2.0, replicates=3, events=500, seed=4
        )
        assert result.mean > 0

    def test_confidence_interval_brackets_mean(self):
        result = estimate_availability(
            "voting", 3, 1.0, replicates=4, events=500, seed=5
        )
        low, high = result.confidence_interval()
        assert low < result.mean < high

    def test_too_few_replicates_rejected(self):
        with pytest.raises(SimulationError):
            estimate_availability("voting", 3, 1.0, replicates=1, events=100)

    def test_nonpositive_events_rejected(self):
        with pytest.raises(SimulationError):
            estimate_availability("voting", 3, 1.0, replicates=2, events=0)
