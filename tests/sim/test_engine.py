"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import ScheduleError
from repro.sim import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ScheduleError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ScheduleError):
            sim.schedule_at(1.0, lambda: None)

    def test_actions_can_schedule_more_actions(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_action_does_not_run(self):
        sim = Simulator()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append(True))
        handle.cancel()
        sim.run()
        assert not ran
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending() == 1

    def test_pending_accurate_after_cancelled_entries_pop(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        handles[0].cancel()
        handles[2].cancel()
        assert sim.pending() == 2
        sim.step()  # runs the entry at t=2, discarding the cancelled t=1
        assert sim.pending() == 1


class TestCompaction:
    """Cancelled entries cannot accumulate without bound."""

    def test_heap_compacts_when_cancelled_dominate(self):
        from repro.sim.engine import _COMPACT_MIN_CANCELLED

        sim = Simulator()
        total = 8 * _COMPACT_MIN_CANCELLED
        handles = [
            sim.schedule(float(i + 1), lambda: None) for i in range(total)
        ]
        for handle in handles:
            handle.cancel()
        assert sim.pending() == 0
        # Every compaction leaves at most the sub-threshold tail of lazy
        # cancellations behind, however many were scheduled.
        assert len(sim._queue) < _COMPACT_MIN_CANCELLED

    def test_order_preserved_across_compaction(self):
        from repro.sim.engine import _COMPACT_MIN_CANCELLED

        sim = Simulator()
        ran = []
        keep = []
        total = 4 * _COMPACT_MIN_CANCELLED
        for i in range(total):
            handle = sim.schedule(
                float(total - i), lambda i=i: ran.append(i)
            )
            if i % 4 == 0:
                keep.append((total - i, i))
            else:
                handle.cancel()
        sim.run()
        assert ran == [i for _, i in sorted(keep)]

    def test_small_queues_never_compact(self):
        from repro.sim.engine import _COMPACT_MIN_CANCELLED

        sim = Simulator()
        count = _COMPACT_MIN_CANCELLED - 1
        handles = [
            sim.schedule(float(i + 1), lambda: None) for i in range(count)
        ]
        for handle in handles:
            handle.cancel()
        assert sim.pending() == 0
        assert len(sim._queue) == count  # lazy discard still in effect


class TestRunLimits:
    def test_run_until_stops_the_clock_at_the_horizon(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(10.0, lambda: ran.append(2))
        sim.run(until=5.0)
        assert ran == [1]
        assert sim.now == 5.0
        sim.run()
        assert ran == [1, 2]

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        ran = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: ran.append(i))
        sim.run(max_events=2)
        assert ran == [0, 1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3
