"""Tests for the vectorized structure-of-arrays Monte-Carlo backend.

Three layers of evidence that the numpy kernels implement the same
protocols as the scalar oracle:

* **exact parity** -- scripted event sequences replayed through both
  implementations must produce identical metadata at every step;
* **statistical agreement** -- free-running estimates from the two
  backends (and the analytic Markov values) must coincide up to
  Monte-Carlo noise, for every registered protocol;
* **bitwise determinism** -- a vectorized run is a pure function of the
  seed: identical across batch sizes and worker counts.
"""

import math
import random

import numpy as np
import pytest

from repro.core.decision import UpdateContext
from repro.core.registry import make_protocol, protocol_names
from repro.errors import SimulationError
from repro.markov import availability
from repro.obs.metrics import MetricsRegistry
from repro.sim import VectorizedReplicaBatch, estimate_availability, simulate_batch
from repro.sim.vectorized import MAX_SITES, ensure_supported, supported_protocols
from repro.types import site_names


def _scalar_trajectory(protocol_name, n, site_sequence):
    """Drive the real protocol objects through a scripted event sequence.

    Mirrors ``StochasticReplicaSystem.step`` exactly (toggle the site,
    then the frequent update by the full up set), returning the per-step
    (up set, copies, available) states.
    """
    sites = site_names(n)
    protocol = make_protocol(protocol_name, sites)
    copies = dict.fromkeys(sites, protocol.initial_metadata())
    up = set(sites)
    states = []
    for site_index in site_sequence:
        site = sites[site_index]
        was_up = site in up
        if was_up:
            up.discard(site)
        else:
            up.add(site)
        if not up:
            available = False
        else:
            context = UpdateContext(recent_failure=site if was_up else None)
            outcome = protocol.attempt_update(frozenset(up), copies, context)
            if outcome.accepted:
                for member in up:
                    copies[member] = outcome.metadata
                available = True
            else:
                available = False
        states.append((frozenset(up), dict(copies), available))
    return sites, states


class TestExactParity:
    """Scripted replay: kernels match the scalar protocols event by event."""

    @pytest.mark.parametrize("protocol", supported_protocols())
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_metadata_matches_scalar_oracle(self, protocol, n):
        rng = random.Random(f"{protocol}:{n}")
        sequence = [rng.randrange(n) for _ in range(300)]
        sites, states = _scalar_trajectory(protocol, n, sequence)
        index = {site: i for i, site in enumerate(sites)}
        batch = VectorizedReplicaBatch(
            protocol, n, 1.0, seed=1, stream_names=["parity"]
        )
        for step, site_index in enumerate(sequence):
            batch.force_events(np.array([site_index]))
            up_set, copies, available = states[step]
            assert bool(batch.available[0]) == available, (protocol, n, step)
            expected_up = np.array([site in up_set for site in sites])
            assert (batch.up[0] == expected_up).all(), (protocol, n, step)
            vn, sc, ds = batch.vn[0], batch.sc[0], batch.ds[0]
            for site in sites:
                meta = copies[site]
                mask = sum(1 << index[d] for d in meta.distinguished)
                i = index[site]
                assert vn[i] == meta.version, (protocol, n, step, site)
                assert sc[i] == meta.cardinality, (protocol, n, step, site)
                assert int(ds[i]) == mask, (protocol, n, step, site)

    def test_all_registered_protocols_have_kernels(self):
        assert set(supported_protocols()) == set(protocol_names())


class TestStatisticalAgreement:
    """Free-running estimates agree between backends and with analytics."""

    KWARGS = dict(replicates=8, events=3_000, burn_in_events=200, seed=17)

    @pytest.mark.parametrize("protocol", supported_protocols())
    def test_backends_agree_all_protocols(self, protocol):
        scalar = estimate_availability(protocol, 5, 1.0, **self.KWARGS)
        vectorized = estimate_availability(
            protocol, 5, 1.0, **self.KWARGS, backend="vectorized"
        )
        # Two-sample bound: both means are noisy, so compare against the
        # combined standard error at the wide-CI z the repo uses.
        bound = 4.4 * math.sqrt(scalar.stderr**2 + vectorized.stderr**2)
        assert abs(scalar.mean - vectorized.mean) <= bound
        assert vectorized.backend == "vectorized"
        assert scalar.backend == "scalar"

    @pytest.mark.parametrize(
        "protocol,n,ratio",
        [
            ("dynamic", 4, 0.5),
            ("dynamic-linear", 6, 2.0),
            ("hybrid", 7, 1.0),
            ("voting", 5, 5.0),
        ],
    )
    def test_backends_agree_across_grid_points(self, protocol, n, ratio):
        scalar = estimate_availability(protocol, n, ratio, **self.KWARGS)
        vectorized = estimate_availability(
            protocol, n, ratio, **self.KWARGS, backend="vectorized"
        )
        bound = 4.4 * math.sqrt(scalar.stderr**2 + vectorized.stderr**2)
        assert abs(scalar.mean - vectorized.mean) <= bound

    @pytest.mark.parametrize("protocol", ["voting", "dynamic", "hybrid"])
    def test_vectorized_agrees_with_analytic(self, protocol):
        result = estimate_availability(
            protocol, 5, 1.0, replicates=8, events=6_000, seed=29,
            backend="vectorized",
        )
        assert result.agrees_with(availability(protocol, 5, 1.0))


class TestBitwiseDeterminism:
    """A vectorized trajectory is a pure function of (seed, replicate)."""

    KWARGS = dict(replicates=9, events=1_200, burn_in_events=100, seed=11)

    def test_identical_across_batch_sizes(self):
        results = [
            estimate_availability(
                "hybrid", 5, 1.0, **self.KWARGS,
                backend="vectorized", batch_size=batch_size,
            )
            for batch_size in (None, 1, 2, 4, 9, 64)
        ]
        assert all(result == results[0] for result in results)

    def test_identical_across_workers(self):
        serial = estimate_availability(
            "dynamic", 5, 1.0, **self.KWARGS,
            backend="vectorized", batch_size=3, workers=1,
        )
        parallel = estimate_availability(
            "dynamic", 5, 1.0, **self.KWARGS,
            backend="vectorized", batch_size=3, workers=2,
        )
        assert parallel == serial  # bitwise: frozen dataclass of floats

    def test_metric_snapshot_identical_across_workers(self):
        snapshots = []
        for workers in (1, 2):
            registry = MetricsRegistry()
            estimate_availability(
                "dynamic-linear", 4, 1.0, **self.KWARGS,
                backend="vectorized", batch_size=3, workers=workers,
                metrics=registry,
            )
            snapshots.append(registry.snapshot())
        # Includes mc.vectorized.steps/batches: the batch layout is fixed
        # by batch_size, never by the worker count.
        assert snapshots[0] == snapshots[1]

    def test_seed_changes_results(self):
        a = estimate_availability(
            "hybrid", 5, 1.0, **{**self.KWARGS, "seed": 1}, backend="vectorized"
        )
        b = estimate_availability(
            "hybrid", 5, 1.0, **{**self.KWARGS, "seed": 2}, backend="vectorized"
        )
        assert a.mean != b.mean

    def test_simulate_batch_replicates_are_independent_of_batchmates(self):
        names = [f"replicate:{i}" for i in range(6)]
        together = simulate_batch(
            "hybrid", 5, 1.0, events=800, burn_in_events=50, seed=5,
            stream_names=names,
        )
        alone = [
            simulate_batch(
                "hybrid", 5, 1.0, events=800, burn_in_events=50, seed=5,
                stream_names=[name],
            ).estimates[0]
            for name in names
        ]
        assert list(together.estimates) == alone


class TestTelemetry:
    def test_backend_and_step_series(self):
        registry = MetricsRegistry()
        result = estimate_availability(
            "hybrid", 5, 1.0, replicates=6, events=500, burn_in_events=100,
            seed=3, backend="vectorized", batch_size=3, metrics=registry,
        )
        snapshot = registry.snapshot()
        assert snapshot["mc.backend"]["value"] == 1.0
        assert snapshot["mc.vectorized.batches"]["value"] == 2
        # Two batches each advance (events + burn_in) numpy steps.
        assert snapshot["mc.vectorized.steps"]["value"] == 2 * 600
        assert "mc.events_per_sec" in registry.wall_clock_snapshot()
        assert 0.0 < result.mean < 1.0

    def test_scalar_backend_gauge_is_zero(self):
        registry = MetricsRegistry()
        estimate_availability(
            "voting", 3, 1.0, replicates=3, events=400, seed=3,
            metrics=registry,
        )
        snapshot = registry.snapshot()
        assert snapshot["mc.backend"]["value"] == 0.0
        assert "mc.vectorized.steps" not in snapshot


class TestErrors:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            estimate_availability(
                "voting", 3, 1.0, replicates=2, events=100, backend="gpu"
            )

    def test_callable_protocol_rejected(self):
        from repro.core import HybridProtocol

        with pytest.raises(SimulationError, match="registry name"):
            estimate_availability(
                HybridProtocol, 3, 1.0, replicates=2, events=100,
                backend="vectorized",
            )

    def test_batch_size_rejected_for_scalar(self):
        with pytest.raises(SimulationError, match="batch_size"):
            estimate_availability(
                "voting", 3, 1.0, replicates=2, events=100, batch_size=4
            )

    def test_nonpositive_batch_size_rejected(self):
        with pytest.raises(SimulationError, match="batch size"):
            estimate_availability(
                "voting", 3, 1.0, replicates=2, events=100,
                backend="vectorized", batch_size=0,
            )

    def test_too_many_sites_rejected(self):
        with pytest.raises(SimulationError, match="at most"):
            ensure_supported("voting", MAX_SITES + 1)

    def test_modified_hybrid_needs_three_sites(self):
        with pytest.raises(SimulationError, match="n >= 3"):
            ensure_supported("modified-hybrid", 2)

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError, match="at least one"):
            VectorizedReplicaBatch("voting", 3, 1.0, seed=1, stream_names=[])

    def test_negative_events_rejected(self):
        batch = VectorizedReplicaBatch(
            "voting", 3, 1.0, seed=1, stream_names=["x"]
        )
        with pytest.raises(SimulationError, match="nonnegative"):
            batch.run(-1, accumulate=True)
