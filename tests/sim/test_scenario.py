"""Unit tests for scenario scripting and the Fig. 1 replay (experiment E1)."""

import pytest

from repro.core import make_protocol
from repro.errors import ScheduleError
from repro.sim import (
    PartitionScenario,
    figure1_scenario,
    paper_order,
    paper_protocols,
)
from repro.types import site_names


class TestScenarioValidation:
    def test_overlapping_groups_rejected(self):
        with pytest.raises(ScheduleError):
            PartitionScenario("ABC", [(0.0, [{"A", "B"}, {"B", "C"}])])

    def test_empty_group_rejected(self):
        with pytest.raises(ScheduleError):
            PartitionScenario("ABC", [(0.0, [set()])])

    def test_unknown_sites_rejected(self):
        with pytest.raises(ScheduleError):
            PartitionScenario("ABC", [(0.0, [{"Z"}])])

    def test_times_must_increase(self):
        with pytest.raises(ScheduleError):
            PartitionScenario(
                "ABC", [(1.0, [{"A"}]), (1.0, [{"B"}])]
            )

    def test_no_epochs_rejected(self):
        with pytest.raises(ScheduleError):
            PartitionScenario("ABC", [])

    def test_protocol_site_mismatch_rejected(self):
        scenario = PartitionScenario("ABC", [(0.0, [{"A", "B", "C"}])])
        with pytest.raises(ScheduleError):
            scenario.replay(make_protocol("voting", site_names(5)))


class TestReplaySemantics:
    def test_one_attempt_per_group(self):
        scenario = PartitionScenario(
            "ABC", [(0.0, [{"A", "B"}, {"C"}])]
        )
        trace = scenario.replay(make_protocol("voting", "ABC"))
        assert len(trace.results[0].decisions) == 2

    def test_at_most_one_group_distinguished_per_epoch(self):
        scenario = figure1_scenario()
        for protocol in paper_protocols():
            trace = scenario.replay(protocol)
            for result in trace.results:
                assert len(result.accepted_groups()) <= 1

    def test_unknown_epoch_time_raises(self):
        scenario = figure1_scenario()
        trace = scenario.replay(paper_protocols()[0])
        with pytest.raises(ScheduleError):
            trace.accepted_at(99.0)

    def test_format_table_mentions_all_groups(self):
        trace = figure1_scenario().replay(paper_protocols()[0])
        table = trace.format_table()
        assert "ABC:" in table and "DE:" in table


class TestFigure1Narrative:
    """The Section VI-A narrative, claim by claim."""

    @pytest.fixture(scope="class")
    def traces(self):
        return figure1_scenario().replay_all(paper_protocols())

    def test_time0_everyone_accepts(self, traces):
        for trace in traces.values():
            assert trace.distinguished_at(0.0) == frozenset("ABCDE")

    def test_time1_all_four_accept_in_abc(self, traces):
        for trace in traces.values():
            assert trace.distinguished_at(1.0) == frozenset("ABC")

    def test_time2_dynamic_algorithms_accept_ab_voting_denies(self, traces):
        assert traces["voting"].distinguished_at(2.0) is None
        for name in ("dynamic", "dynamic-linear", "hybrid"):
            assert traces[name].distinguished_at(2.0) == frozenset("AB")

    def test_time3_voting_cde_linear_a_others_deny(self, traces):
        assert traces["voting"].distinguished_at(3.0) == frozenset("CDE")
        assert traces["dynamic-linear"].distinguished_at(3.0) == frozenset("A")
        assert traces["dynamic"].distinguished_at(3.0) is None
        assert traces["hybrid"].distinguished_at(3.0) is None

    def test_time4_only_linear_and_hybrid_accept(self, traces):
        assert traces["dynamic-linear"].distinguished_at(4.0) == frozenset("A")
        assert traces["hybrid"].distinguished_at(4.0) == frozenset("BC")
        assert traces["voting"].distinguished_at(4.0) is None
        assert traces["dynamic"].distinguished_at(4.0) is None

    def test_hybrid_partition_larger_than_linears_at_time4(self, traces):
        hybrid = traces["hybrid"].distinguished_at(4.0)
        linear = traces["dynamic-linear"].distinguished_at(4.0)
        assert len(hybrid) > len(linear)


class TestPaperOrder:
    def test_reverse_alphabet(self):
        assert paper_order(site_names(3)) == ("C", "B", "A")

    def test_paper_protocols_use_it(self):
        protocols = paper_protocols()
        for protocol in protocols:
            assert protocol.greatest({"A", "B"}) == "A"
