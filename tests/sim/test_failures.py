"""Unit tests for the Poisson failure/repair sampler and Rates."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim import EventKind, FailureRepairSampler, Rates
from repro.types import site_names


class TestRates:
    def test_ratio(self):
        rates = Rates(failure=2.0, repair=6.0)
        assert rates.ratio == 3.0

    def test_from_ratio(self):
        rates = Rates.from_ratio(2.5)
        assert rates.failure == 1.0
        assert rates.repair == 2.5

    def test_up_probability(self):
        assert Rates(1.0, 3.0).up_probability() == 0.75
        assert Rates(1.0, 0.0).up_probability() == 0.0

    def test_nonpositive_failure_rejected(self):
        with pytest.raises(SimulationError):
            Rates(0.0, 1.0)

    def test_negative_repair_rejected(self):
        with pytest.raises(SimulationError):
            Rates(1.0, -1.0)


class TestSampler:
    def test_first_event_is_a_failure(self):
        sampler = FailureRepairSampler(
            site_names(3), Rates(1.0, 1.0), random.Random(1)
        )
        event = sampler.next_event()
        assert event.kind is EventKind.SITE_FAILURE
        assert event.subject in set(site_names(3))
        assert len(sampler.up) == 2

    def test_time_is_monotone(self):
        sampler = FailureRepairSampler(
            site_names(4), Rates(1.0, 2.0), random.Random(7)
        )
        times = [sampler.next_event().time for _ in range(200)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_up_set_tracks_events(self):
        sampler = FailureRepairSampler(
            site_names(4), Rates(1.0, 2.0), random.Random(3)
        )
        for _ in range(500):
            event = sampler.next_event()
            if event.kind is EventKind.SITE_FAILURE:
                assert event.subject not in sampler.up
            else:
                assert event.subject in sampler.up

    def test_absorbing_state_raises(self):
        sampler = FailureRepairSampler(
            site_names(1), Rates(1.0, 0.0), random.Random(0)
        )
        sampler.next_event()  # the only site fails
        with pytest.raises(SimulationError):
            sampler.next_event()

    def test_long_run_up_fraction_matches_theory(self):
        rates = Rates(1.0, 3.0)  # p_up = 0.75
        sampler = FailureRepairSampler(
            site_names(10), rates, random.Random(42)
        )
        weighted_up = 0.0
        last_time = 0.0
        for _ in range(30_000):
            up_before = len(sampler.up)
            event = sampler.next_event()
            weighted_up += up_before * (event.time - last_time)
            last_time = event.time
        average_up = weighted_up / last_time / 10
        assert average_up == pytest.approx(0.75, abs=0.01)

    def test_initially_up_subset(self):
        sampler = FailureRepairSampler(
            site_names(3),
            Rates(1.0, 1.0),
            random.Random(0),
            initially_up=["A"],
        )
        assert sampler.up == frozenset("A")

    def test_unknown_initially_up_rejected(self):
        with pytest.raises(SimulationError):
            FailureRepairSampler(
                site_names(3), Rates(1.0, 1.0), random.Random(0), initially_up=["Z"]
            )


class TestEventRecord:
    def test_describe(self):
        from repro.sim import Event

        event = Event(3.2, EventKind.SITE_FAILURE, "C")
        assert event.describe() == "t=3.20 site-failure(C)"
        link = Event(1.0, EventKind.LINK_FAILURE, "A", "B")
        assert "A-B" in link.describe()

    def test_ordering_by_time(self):
        from repro.sim import Event

        events = [
            Event(2.0, EventKind.SITE_REPAIR, "A"),
            Event(1.0, EventKind.SITE_FAILURE, "B"),
        ]
        assert sorted(events)[0].time == 1.0
