"""Unit tests for the failing topology and partition computation."""

import pytest

from repro.errors import SimulationError
from repro.sim import Topology
from repro.types import site_names


class TestBasics:
    def test_complete_graph_by_default(self):
        topo = Topology(site_names(4))
        assert len(topo.links) == 6

    def test_explicit_links(self):
        topo = Topology("ABC", links=[("A", "B"), ("B", "C")])
        assert topo.link_is_up("A", "B")
        assert not topo.link_is_up("A", "C")  # no physical link

    def test_self_link_rejected(self):
        with pytest.raises(SimulationError):
            Topology("AB", links=[("A", "A")])

    def test_unknown_link_endpoint_rejected(self):
        with pytest.raises(SimulationError):
            Topology("AB", links=[("A", "Z")])


class TestSiteFailures:
    def test_fail_and_repair(self):
        topo = Topology(site_names(3))
        topo.fail_site("B")
        assert not topo.is_up("B")
        assert topo.up_sites() == frozenset("AC")
        topo.repair_site("B")
        assert topo.is_up("B")

    def test_double_fail_rejected(self):
        topo = Topology(site_names(3))
        topo.fail_site("B")
        with pytest.raises(SimulationError):
            topo.fail_site("B")

    def test_double_repair_rejected(self):
        topo = Topology(site_names(3))
        with pytest.raises(SimulationError):
            topo.repair_site("B")

    def test_unknown_site_rejected(self):
        topo = Topology(site_names(3))
        with pytest.raises(SimulationError):
            topo.fail_site("Z")


class TestPartitions:
    def test_healthy_network_is_one_partition(self):
        topo = Topology(site_names(5))
        assert topo.partitions() == (frozenset("ABCDE"),)

    def test_site_failure_shrinks_the_partition(self):
        topo = Topology(site_names(5))
        topo.fail_site("C")
        assert topo.partitions() == (frozenset("ABDE"),)

    def test_link_failures_split_partitions(self):
        topo = Topology(site_names(4))
        for a in "AB":
            for b in "CD":
                topo.fail_link(a, b)
        parts = topo.partitions()
        assert set(parts) == {frozenset("AB"), frozenset("CD")}

    def test_partitions_sorted_largest_first(self):
        topo = Topology(site_names(5))
        topo.set_partitions([{"A"}, {"B", "C", "D"}])
        parts = topo.partitions()
        assert parts[0] == frozenset("BCD")
        assert parts[1] == frozenset("A")

    def test_partition_of(self):
        topo = Topology(site_names(4))
        topo.set_partitions([{"A", "B"}, {"C"}])
        assert topo.partition_of("A") == frozenset("AB")
        assert topo.partition_of("C") == frozenset("C")
        assert topo.partition_of("D") is None  # down

    def test_chain_topology_partitions(self):
        # A - B - C: failing B separates A and C.
        topo = Topology("ABC", links=[("A", "B"), ("B", "C")])
        topo.fail_site("B")
        assert set(topo.partitions()) == {frozenset("A"), frozenset("C")}


class TestSetPartitions:
    def test_set_partitions_downs_unlisted_sites(self):
        topo = Topology(site_names(5))
        topo.set_partitions([{"A", "B"}, {"D", "E"}])
        assert not topo.is_up("C")
        assert set(topo.partitions()) == {frozenset("AB"), frozenset("DE")}

    def test_overlapping_groups_rejected(self):
        topo = Topology(site_names(3))
        with pytest.raises(SimulationError):
            topo.set_partitions([{"A", "B"}, {"B", "C"}])

    def test_unknown_sites_rejected(self):
        topo = Topology(site_names(3))
        with pytest.raises(SimulationError):
            topo.set_partitions([{"Z"}])

    def test_successive_layouts(self):
        topo = Topology(site_names(5))
        topo.set_partitions([{"A", "B", "C"}, {"D", "E"}])
        topo.set_partitions([{"A", "B", "C", "D", "E"}])
        assert topo.partitions() == (frozenset("ABCDE"),)
