"""Tests for the scenario script parser and timeline renderer."""

import pytest

from repro.errors import ScheduleError
from repro.sim import PartitionScenario, figure1_scenario, paper_protocols
from repro.types import site_names


class TestFromScript:
    def test_fig1_script_equals_builtin(self):
        script = """
        # the paper's partition graph
        0: ABCDE
        1: ABC / DE
        2: AB / C / DE
        3: A / B / CDE
        4: A / BC / DE
        """
        scenario = PartitionScenario.from_script("ABCDE", script)
        assert scenario.epochs == figure1_scenario().epochs

    def test_comma_and_space_separators(self):
        scenario = PartitionScenario.from_script(
            site_names(3), "0: A, B / C\n1: A B C"
        )
        assert scenario.epochs[0].groups == (frozenset("AB"), frozenset("C"))
        assert scenario.epochs[1].groups == (frozenset("ABC"),)

    def test_multicharacter_site_ids(self):
        scenario = PartitionScenario.from_script(
            ["node1", "node2"], "0: node1 / node2\n1: node1 node2"
        )
        assert scenario.epochs[0].groups == (
            frozenset({"node1"}),
            frozenset({"node2"}),
        )

    def test_comments_and_blank_lines_ignored(self):
        scenario = PartitionScenario.from_script(
            "AB", "\n# comment\n0: AB\n\n"
        )
        assert len(scenario.epochs) == 1

    def test_down_sites_are_simply_absent(self):
        scenario = PartitionScenario.from_script("ABC", "0: AB")
        assert scenario.epochs[0].groups == (frozenset("AB"),)

    def test_missing_colon_rejected(self):
        with pytest.raises(ScheduleError, match="missing ':'"):
            PartitionScenario.from_script("AB", "0 AB")

    def test_bad_time_rejected(self):
        with pytest.raises(ScheduleError, match="bad epoch time"):
            PartitionScenario.from_script("AB", "zero: AB")

    def test_unknown_token_rejected(self):
        with pytest.raises(ScheduleError, match="unknown site token"):
            PartitionScenario.from_script("AB", "0: AZ")

    def test_empty_group_rejected(self):
        with pytest.raises(ScheduleError, match="empty group"):
            PartitionScenario.from_script("AB", "0: A //")


class TestRenderTimeline:
    def test_plain_rendering(self):
        text = figure1_scenario().render_timeline()
        assert "[ABC]  [DE]" in text

    def test_down_sites_marked(self):
        scenario = PartitionScenario.from_script("ABC", "0: AB")
        assert "down:C" in scenario.render_timeline()

    def test_annotated_rendering(self):
        scenario = figure1_scenario()
        traces = scenario.replay_all(paper_protocols())
        text = scenario.render_timeline(traces)
        assert "voting=CDE" in text
        assert "hybrid=BC" in text
        assert "dynamic=-" in text
