"""Unit tests for the stochastic model (frequent-update dynamics)."""

import random

import pytest

from repro.core import make_protocol
from repro.sim import (
    AvailabilityAccumulator,
    Rates,
    RandomStreams,
    StochasticReplicaSystem,
)
from repro.types import site_names


def system(name="hybrid", n=5, ratio=1.0, seed=11):
    protocol = make_protocol(name, site_names(n))
    return StochasticReplicaSystem(
        protocol, Rates.from_ratio(ratio), random.Random(seed)
    )


class TestDynamics:
    def test_starts_available_with_all_up(self):
        s = system()
        assert s.available
        assert s.up == frozenset("ABCDE")

    def test_step_applies_the_frequent_update(self):
        s = system()
        s.step()  # a failure, then an update by the surviving 4 sites
        assert s.up != frozenset("ABCDE")
        meta = s.copies[next(iter(s.up))]
        assert meta.cardinality == 4
        assert meta.version == 1
        assert s.updates_accepted == 1

    def test_cardinality_tracks_cascading_failures(self):
        s = system("dynamic", n=5, ratio=0.0001, seed=5)
        # With a tiny repair rate, failures cascade; dynamic voting walks
        # its cardinality down one at a time until it bottoms out at 2.
        cards = set()
        for _ in range(4):
            s.step()
            up = s.up
            if up and s.available:
                cards.add(s.copies[next(iter(up))].cardinality)
        assert cards <= {2, 3, 4}

    def test_blocked_states_deny_updates(self):
        s = system("voting", n=3, ratio=0.0001, seed=2)
        s.step()  # one down: majority of 3 is 2 -> still up
        s.step()  # two down -> blocked
        assert not s.available
        assert s.updates_denied >= 1

    def test_copies_converge_after_acceptance(self):
        s = system(seed=13)
        for _ in range(50):
            s.step()
            if s.available:
                metas = {s.copies[site] for site in s.up}
                assert len(metas) == 1

    def test_run_counts_events(self):
        s = system()
        s.run(25)
        assert s.updates_accepted + s.updates_denied <= 25
        assert s.time > 0

    def test_negative_run_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            system().run(-1)


class TestAccumulator:
    def test_estimate_in_unit_interval(self):
        s = system(seed=3)
        accumulator = AvailabilityAccumulator(s)
        estimate = accumulator.run(2_000)
        assert 0.0 < estimate < 1.0

    def test_estimate_close_to_analytic(self):
        from repro.markov import availability

        s = system("dynamic", n=4, ratio=2.0, seed=29)
        accumulator = AvailabilityAccumulator(s)
        estimate = accumulator.run(60_000)
        expected = availability("dynamic", 4, 2.0)
        assert estimate == pytest.approx(expected, abs=0.02)

    def test_burn_in_discards_early_time(self):
        s = system(seed=17)
        accumulator = AvailabilityAccumulator(s, burn_in=5.0)
        accumulator.run(2_000)
        assert accumulator.observed_time < s.time

    def test_negative_burn_in_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            AvailabilityAccumulator(system(), burn_in=-1.0)

    def test_empty_estimate_is_zero(self):
        accumulator = AvailabilityAccumulator(system())
        assert accumulator.estimate() == 0.0


class TestRandomStreams:
    def test_streams_are_reproducible(self):
        a = RandomStreams(5).stream("x").random()
        b = RandomStreams(5).stream("x").random()
        assert a == b

    def test_streams_are_named_and_cached(self):
        streams = RandomStreams(5)
        assert streams.stream("x") is streams.stream("x")
        assert streams.stream("x") is not streams.stream("y")

    def test_different_names_differ(self):
        streams = RandomStreams(5)
        assert streams.stream("x").random() != streams.stream("y").random()

    def test_spawn_is_independent(self):
        parent = RandomStreams(5)
        child = parent.spawn("worker")
        assert child.master_seed != parent.master_seed
        assert child.stream("x").random() != parent.stream("x").random()
