"""Property tests tying the two exact solvers together.

The Bareiss symbolic solver and the Fraction pointwise solver are
independent implementations of the same mathematics; solving a random
polynomial system symbolically and then evaluating at random rational
points must agree with solving the already-evaluated system.  This is the
in-miniature version of the paper's "through a different set of software"
validation, applied to our own algebra.
"""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError, SingularSystemError
from repro.ratfunc import Polynomial, bareiss_solve, fraction_solve

coefficients = st.fractions(min_value=-5, max_value=5, max_denominator=4)
linear_polys = st.builds(Polynomial.linear, coefficients, coefficients)


@st.composite
def systems(draw, size=3):
    matrix = [
        [draw(linear_polys) for _ in range(size)] for _ in range(size)
    ]
    rhs = [draw(linear_polys) for _ in range(size)]
    return matrix, rhs


@given(system=systems(), point=st.fractions(min_value=-3, max_value=3, max_denominator=6))
@settings(max_examples=60, deadline=None)
def test_symbolic_solution_evaluates_to_pointwise_solution(system, point):
    matrix, rhs = system
    try:
        symbolic = bareiss_solve(matrix, rhs)
    except SingularSystemError:
        return
    evaluated_matrix = [[entry(point) for entry in row] for row in matrix]
    evaluated_rhs = [entry(point) for entry in rhs]
    try:
        pointwise = fraction_solve(evaluated_matrix, evaluated_rhs)
    except SingularSystemError:
        return  # the point hits a root of the determinant
    for sym, exact in zip(symbolic, pointwise):
        try:
            value = sym(Fraction(point))
        except AlgebraError:
            return  # pole exactly at the sample point
        assert value == exact


@given(system=systems(size=2))
@settings(max_examples=60, deadline=None)
def test_bareiss_solution_satisfies_the_system(system):
    from repro.ratfunc import RationalFunction

    matrix, rhs = system
    try:
        solution = bareiss_solve(matrix, rhs)
    except SingularSystemError:
        return
    for row, b in zip(matrix, rhs):
        total = RationalFunction(Polynomial())
        for coefficient, x in zip(row, solution):
            total = total + RationalFunction(coefficient) * x
        assert total == RationalFunction(b)


@given(
    ratio=st.fractions(min_value=Fraction(1, 20), max_value=15, max_denominator=30),
    n=st.integers(3, 6),
)
@settings(max_examples=30, deadline=None)
def test_chain_symbolic_equals_chain_exact(ratio, n):
    """End-to-end: the symbolic hybrid availability evaluates exactly."""
    from repro.markov import availability_exact, availability_symbolic

    symbolic = availability_symbolic("hybrid", n)
    assert symbolic(ratio) == availability_exact("hybrid", n, ratio)
