"""Unit and property tests for the exact linear solvers."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError, SingularSystemError
from repro.ratfunc import (
    ONE,
    Polynomial,
    RationalFunction,
    X,
    bareiss_solve,
    fraction_solve,
)


class TestFractionSolve:
    def test_two_by_two(self):
        solution = fraction_solve(
            [[Fraction(2), Fraction(1)], [Fraction(1), Fraction(3)]],
            [Fraction(5), Fraction(10)],
        )
        assert solution == [Fraction(1), Fraction(3)]

    def test_exactness(self):
        # A system with an awkward rational solution.
        solution = fraction_solve(
            [[Fraction(1, 3), Fraction(1, 7)], [Fraction(1, 2), Fraction(1, 5)]],
            [Fraction(1), Fraction(1)],
        )
        a = [[Fraction(1, 3), Fraction(1, 7)], [Fraction(1, 2), Fraction(1, 5)]]
        for row, rhs in zip(a, [Fraction(1), Fraction(1)]):
            assert sum(c * x for c, x in zip(row, solution)) == rhs

    def test_singular_rejected(self):
        with pytest.raises(SingularSystemError):
            fraction_solve(
                [[Fraction(1), Fraction(2)], [Fraction(2), Fraction(4)]],
                [Fraction(1), Fraction(2)],
            )

    def test_non_square_rejected(self):
        with pytest.raises(AlgebraError):
            fraction_solve([[Fraction(1)]], [Fraction(1), Fraction(2)])

    def test_requires_pivoting(self):
        # Leading zero forces a row swap.
        solution = fraction_solve(
            [[Fraction(0), Fraction(1)], [Fraction(1), Fraction(0)]],
            [Fraction(7), Fraction(9)],
        )
        assert solution == [Fraction(9), Fraction(7)]

    @given(
        st.lists(
            st.lists(
                st.fractions(min_value=-9, max_value=9, max_denominator=5),
                min_size=3,
                max_size=3,
            ),
            min_size=3,
            max_size=3,
        ),
        st.lists(
            st.fractions(min_value=-9, max_value=9, max_denominator=5),
            min_size=3,
            max_size=3,
        ),
    )
    @settings(max_examples=50)
    def test_solution_satisfies_system(self, matrix, rhs):
        try:
            solution = fraction_solve(matrix, rhs)
        except SingularSystemError:
            return
        for row, b in zip(matrix, rhs):
            assert sum(c * x for c, x in zip(row, solution)) == b


class TestBareissSolve:
    def test_constant_system_matches_fraction_solve(self):
        matrix = [[Polynomial([2]), Polynomial([1])], [Polynomial([1]), Polynomial([3])]]
        rhs = [Polynomial([5]), Polynomial([10])]
        solution = bareiss_solve(matrix, rhs)
        assert [s(Fraction(0)) for s in solution] == [Fraction(1), Fraction(3)]

    def test_symbolic_system(self):
        # [x 1; 1 x] [a b]^T = [1 0] -> a = x/(x^2-1), b = -1/(x^2-1).
        solution = bareiss_solve([[X, ONE], [ONE, X]], [ONE, Polynomial()])
        assert solution[0] == RationalFunction(X, X * X - 1)
        assert solution[1] == RationalFunction(Polynomial([-1]), X * X - 1)

    def test_solution_satisfies_system_symbolically(self):
        matrix = [[X + 1, X], [ONE, X + 2]]
        rhs = [X * X, ONE]
        solution = bareiss_solve(matrix, rhs)
        for row, b in zip(matrix, rhs):
            total = RationalFunction(Polynomial())
            for coefficient, x in zip(row, solution):
                total = total + RationalFunction(coefficient) * x
            assert total == RationalFunction(b)

    def test_singular_symbolic_rejected(self):
        with pytest.raises(SingularSystemError):
            bareiss_solve([[X, X], [X, X]], [ONE, ONE])

    def test_pivoting_on_zero_leading_entry(self):
        solution = bareiss_solve(
            [[Polynomial(), ONE], [ONE, Polynomial()]], [X, X + 1]
        )
        assert solution[0] == RationalFunction(X + 1)
        assert solution[1] == RationalFunction(X)

    def test_accepts_scalars(self):
        solution = bareiss_solve([[2, 0], [0, 4]], [2, 8])
        assert solution[0] == RationalFunction(ONE)
        assert solution[1] == RationalFunction(Polynomial([2]))
