"""Unit and property tests for exact root counting and bisection."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError
from repro.ratfunc import (
    Polynomial,
    X,
    bisect_root,
    cauchy_bound,
    count_positive_roots,
    count_roots_between,
    isolate_positive_roots,
    sturm_sequence,
)


def poly_with_roots(*roots):
    p = Polynomial([1])
    for root in roots:
        p = p * (X - root)
    return p


class TestCauchyBound:
    def test_bounds_all_roots(self):
        p = poly_with_roots(3, -7, Fraction(1, 2))
        bound = cauchy_bound(p)
        assert bound >= 7

    def test_constant_rejected(self):
        with pytest.raises(AlgebraError):
            cauchy_bound(Polynomial([5]))


class TestSturm:
    def test_simple_roots_counted(self):
        p = poly_with_roots(1, 2, -3)
        assert count_positive_roots(p) == 2

    def test_repeated_roots_counted_once(self):
        p = poly_with_roots(2, 2, 2)
        assert count_positive_roots(p) == 1

    def test_no_positive_roots(self):
        assert count_positive_roots(poly_with_roots(-1, -2)) == 0
        assert count_positive_roots(X * X + 1) == 0

    def test_count_in_interval(self):
        p = poly_with_roots(1, 5, 9)
        assert count_roots_between(p, Fraction(0), Fraction(6)) == 2
        assert count_roots_between(p, Fraction(2), Fraction(4)) == 0

    def test_interval_is_half_open(self):
        p = poly_with_roots(3)
        # (0, 3] includes the root at 3; (3, 10] does not.
        assert count_roots_between(p, Fraction(0), Fraction(3)) == 1
        assert count_roots_between(p, Fraction(3), Fraction(10)) == 0

    def test_empty_interval_rejected(self):
        with pytest.raises(AlgebraError):
            count_roots_between(X, Fraction(2), Fraction(1))

    def test_sturm_sequence_ends_with_constant_for_squarefree(self):
        sequence = sturm_sequence(poly_with_roots(1, 2))
        assert sequence[-1].degree <= 0

    @given(
        st.lists(
            st.integers(min_value=-8, max_value=8), min_size=1, max_size=4
        )
    )
    @settings(max_examples=60)
    def test_matches_numpy_root_count(self, int_roots):
        p = poly_with_roots(*int_roots)
        expected = len({r for r in int_roots if r > 0})
        assert count_positive_roots(p) == expected

    @given(
        st.lists(
            st.fractions(min_value=-10, max_value=10, max_denominator=6),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60)
    def test_against_numpy_on_random_coefficients(self, coefficients):
        p = Polynomial(coefficients)
        if p.degree < 1:
            return
        numpy_roots = np.roots([float(c) for c in reversed(p.coefficients)])
        distinct_positive = set()
        for root in numpy_roots:
            if abs(root.imag) < 1e-9 and root.real > 1e-9:
                distinct_positive.add(round(root.real, 6))
        assert count_positive_roots(p) == len(distinct_positive)


class TestIsolation:
    def test_each_interval_holds_one_root(self):
        p = poly_with_roots(1, 4, 9, -2)
        intervals = isolate_positive_roots(p)
        assert len(intervals) == 3
        for low, high in intervals:
            assert count_roots_between(p, low, high) == 1

    def test_intervals_are_disjoint_and_sorted(self):
        p = poly_with_roots(1, 2, 3)
        intervals = isolate_positive_roots(p)
        for (a, b), (c, d) in zip(intervals, intervals[1:]):
            assert b <= c

    def test_constant_has_no_intervals(self):
        assert isolate_positive_roots(Polynomial([3])) == []


class TestBisection:
    def test_bracket_shrinks_below_tolerance(self):
        p = poly_with_roots(2)
        low, high = bisect_root(p, Fraction(1), Fraction(3), Fraction(1, 10**6))
        assert high - low <= Fraction(1, 10**6)
        assert low <= 2 <= high

    def test_exact_hit_returns_point(self):
        p = poly_with_roots(2)
        low, high = bisect_root(p, Fraction(1), Fraction(3), Fraction(1, 4))
        # Midpoint of (1,3) is exactly the root.
        assert low == high == 2

    def test_endpoint_root_returned(self):
        p = poly_with_roots(1)
        assert bisect_root(p, Fraction(1), Fraction(2)) == (Fraction(1), Fraction(1))

    def test_no_sign_change_rejected(self):
        p = poly_with_roots(5)
        with pytest.raises(AlgebraError):
            bisect_root(p, Fraction(1), Fraction(2))

    def test_result_is_exact_rational_bracket(self):
        p = X * X - 2  # sqrt(2)
        low, high = bisect_root(p, Fraction(1), Fraction(2), Fraction(1, 10**9))
        assert p(low) < 0 < p(high)
        assert isinstance(low, Fraction) and isinstance(high, Fraction)
