"""Unit and property tests for exact polynomials."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError
from repro.ratfunc import ONE, X, ZERO, Polynomial

fractions = st.fractions(
    min_value=-100, max_value=100, max_denominator=20
)
polynomials = st.lists(fractions, min_size=0, max_size=6).map(Polynomial)


class TestConstruction:
    def test_trailing_zeros_stripped(self):
        assert Polynomial([1, 2, 0, 0]).degree == 1

    def test_zero_polynomial(self):
        assert ZERO.degree == -1
        assert ZERO.is_zero()
        assert not ZERO

    def test_constant(self):
        p = Polynomial.constant(Fraction(3, 4))
        assert p.degree == 0
        assert p(10) == Fraction(3, 4)

    def test_monomial(self):
        p = Polynomial.monomial(3, 2)
        assert p.degree == 3
        assert p(2) == 16

    def test_negative_monomial_degree_rejected(self):
        with pytest.raises(AlgebraError):
            Polynomial.monomial(-1)

    def test_linear(self):
        p = Polynomial.linear(3, 2)  # 3 + 2x
        assert p(5) == 13

    def test_irrational_coefficient_rejected(self):
        with pytest.raises(AlgebraError):
            Polynomial([0.5])

    def test_getitem_out_of_range_is_zero(self):
        p = Polynomial([1, 2])
        assert p[5] == 0


class TestArithmetic:
    def test_addition(self):
        assert (X + 1) + (X - 1) == 2 * X

    def test_subtraction_cancels(self):
        p = 3 * X**2 + X
        assert (p - p).is_zero()

    def test_multiplication(self):
        assert (X + 1) * (X - 1) == X**2 - 1

    def test_power(self):
        assert (X + 1) ** 3 == X**3 + 3 * X**2 + 3 * X + 1

    def test_negative_power_rejected(self):
        with pytest.raises(AlgebraError):
            X ** -1

    def test_scalar_coercion(self):
        assert X * Fraction(1, 2) == Polynomial([0, Fraction(1, 2)])
        assert 1 + X == Polynomial([1, 1])

    def test_divmod_exact(self):
        quotient, remainder = divmod(X**2 - 1, X - 1)
        assert quotient == X + 1
        assert remainder.is_zero()

    def test_divmod_with_remainder(self):
        quotient, remainder = divmod(X**2 + 1, X - 1)
        assert quotient == X + 1
        assert remainder == Polynomial([2])

    def test_division_by_zero_rejected(self):
        with pytest.raises(AlgebraError):
            divmod(X, ZERO)

    def test_exact_div_rejects_remainders(self):
        with pytest.raises(AlgebraError):
            (X**2 + 1).exact_div(X - 1)

    @given(polynomials, polynomials)
    @settings(max_examples=60)
    def test_commutative_ring_axioms(self, p, q):
        assert p + q == q + p
        assert p * q == q * p
        assert p + ZERO == p
        assert p * ONE == p
        assert (p - p).is_zero()

    @given(polynomials, polynomials, polynomials)
    @settings(max_examples=40)
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials, polynomials)
    @settings(max_examples=40)
    def test_division_algorithm(self, p, q):
        if q.is_zero():
            return
        quotient, remainder = divmod(p, q)
        assert quotient * q + remainder == p
        assert remainder.is_zero() or remainder.degree < q.degree

    @given(polynomials, polynomials, fractions)
    @settings(max_examples=40)
    def test_evaluation_is_a_homomorphism(self, p, q, point):
        assert (p * q)(point) == p(point) * q(point)
        assert (p + q)(point) == p(point) + q(point)


class TestCalculusAndStructure:
    def test_derivative(self):
        assert (X**3 + 2 * X).derivative() == 3 * X**2 + 2

    def test_derivative_of_constant(self):
        assert Polynomial.constant(5).derivative().is_zero()

    def test_monic(self):
        assert (2 * X + 4).monic() == X + 2

    def test_gcd(self):
        p = (X - 1) * (X - 2)
        q = (X - 1) * (X + 5)
        assert p.gcd(q) == X - 1

    def test_gcd_of_coprimes_is_one(self):
        assert (X + 1).gcd(X + 2) == ONE

    @given(polynomials, polynomials)
    @settings(max_examples=30)
    def test_gcd_divides_both(self, p, q):
        g = p.gcd(q)
        if g.is_zero():
            assert p.is_zero() and q.is_zero()
            return
        assert (p % g).is_zero()
        assert (q % g).is_zero()

    def test_content_free(self):
        p = Polynomial([Fraction(2, 3), Fraction(4, 3)])
        primitive = p.content_free()
        assert primitive == Polynomial([1, 2])

    def test_sign_changes_descartes(self):
        # x^3 - 7x + 6 = (x-1)(x-2)(x+3): signs + - + -> 2 changes, 2 roots.
        p = X**3 - 7 * X + 6
        assert p.sign_changes() == 2

    def test_no_sign_changes_means_no_positive_roots(self):
        assert (X**2 + X + 1).sign_changes() == 0

    def test_to_string(self):
        assert (X**2 - 2 * X + 1).to_string() == "r^2 - 2*r + 1"
        assert ZERO.to_string() == "0"
