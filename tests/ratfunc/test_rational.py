"""Unit and property tests for rational functions."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError
from repro.ratfunc import ONE, X, ZERO, Polynomial, RationalFunction

fractions = st.fractions(min_value=-20, max_value=20, max_denominator=10)
polys = st.lists(fractions, min_size=0, max_size=4).map(Polynomial)
nonzero_polys = polys.filter(lambda p: not p.is_zero())
rationals = st.builds(RationalFunction, polys, nonzero_polys)


class TestReduction:
    def test_common_factor_cancelled(self):
        f = RationalFunction(X**2 - 1, X - 1)
        assert f.numerator == X + 1
        assert f.denominator == ONE
        assert f.is_polynomial()

    def test_denominator_made_monic(self):
        f = RationalFunction(X, 2 * X + 2)
        assert f.denominator == X + 1
        assert f.numerator == Polynomial([0, Fraction(1, 2)])

    def test_zero_numerator_normalises_fully(self):
        f = RationalFunction(ZERO, X**5 + 3)
        assert f.is_zero()
        assert f.denominator == ONE

    def test_zero_denominator_rejected(self):
        with pytest.raises(AlgebraError):
            RationalFunction(X, ZERO)

    def test_scalar_constructor(self):
        f = RationalFunction.constant(Fraction(2, 3))
        assert f(100) == Fraction(2, 3)


class TestFieldOperations:
    def test_addition_with_common_denominator(self):
        f = RationalFunction(ONE, X) + RationalFunction(ONE, X)
        assert f == RationalFunction(Polynomial([2]), X)

    def test_subtraction_to_zero(self):
        f = RationalFunction(X, X + 1)
        assert (f - f).is_zero()

    def test_multiplication_cancels(self):
        f = RationalFunction(X + 1, X + 2) * RationalFunction(X + 2, X + 1)
        assert f == RationalFunction(ONE)

    def test_division(self):
        f = RationalFunction(X) / RationalFunction(X + 1)
        assert f == RationalFunction(X, X + 1)

    def test_division_by_zero_rejected(self):
        with pytest.raises(AlgebraError):
            RationalFunction(X) / RationalFunction(ZERO)

    def test_scalar_coercion(self):
        f = RationalFunction(X) + 1
        assert f == RationalFunction(X + 1)
        assert 2 * RationalFunction(X) == RationalFunction(2 * X)

    @given(rationals, rationals)
    @settings(max_examples=40)
    def test_commutativity(self, f, g):
        assert f + g == g + f
        assert f * g == g * f

    @given(rationals, rationals, rationals)
    @settings(max_examples=25)
    def test_associativity_of_addition(self, f, g, h):
        assert (f + g) + h == f + (g + h)

    @given(rationals)
    @settings(max_examples=40)
    def test_additive_inverse(self, f):
        assert (f + (-f)).is_zero()

    @given(rationals)
    @settings(max_examples=40)
    def test_multiplicative_inverse(self, f):
        if f.is_zero():
            return
        assert f / f == RationalFunction(ONE)


class TestEvaluation:
    def test_exact_fraction_evaluation(self):
        f = RationalFunction(X + 1, X - 1)
        assert f(Fraction(3)) == Fraction(2)

    def test_pole_raises(self):
        f = RationalFunction(ONE, X - 1)
        with pytest.raises(AlgebraError):
            f(1)

    def test_sign_at(self):
        f = RationalFunction(X - 2, X + 1)
        assert f.sign_at(Fraction(3)) == 1
        assert f.sign_at(Fraction(1)) == -1
        assert f.sign_at(Fraction(2)) == 0

    @given(rationals, fractions)
    @settings(max_examples=40)
    def test_evaluation_consistent_with_num_den(self, f, point):
        if f.denominator(point) == 0:
            return
        assert f(point) == f.numerator(point) / f.denominator(point)
