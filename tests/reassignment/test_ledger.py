"""Unit tests for vote ledgers."""

import pytest

from repro.errors import MetadataInvariantError
from repro.reassignment import VoteLedger


class TestConstruction:
    def test_basic(self):
        ledger = VoteLedger(3, (("A", 1), ("B", 2)))
        assert ledger.version == 3
        assert ledger.total == 3
        assert ledger.voters == frozenset("AB")

    def test_zero_votes_dropped(self):
        ledger = VoteLedger(0, (("A", 1), ("B", 0)))
        assert ledger.voters == frozenset("A")

    def test_sorted_canonically(self):
        assert VoteLedger(0, (("B", 1), ("A", 1))) == VoteLedger(
            0, (("A", 1), ("B", 1))
        )

    def test_hashable(self):
        assert len({VoteLedger(0, (("A", 1),)), VoteLedger(0, (("A", 1),))}) == 1

    def test_negative_votes_rejected(self):
        with pytest.raises(MetadataInvariantError):
            VoteLedger(0, (("A", -1), ("B", 2)))

    def test_duplicate_voters_rejected(self):
        with pytest.raises(MetadataInvariantError):
            VoteLedger(0, (("A", 1), ("A", 2)))

    def test_empty_assignment_rejected(self):
        with pytest.raises(MetadataInvariantError):
            VoteLedger(0, ())

    def test_negative_version_rejected(self):
        with pytest.raises(MetadataInvariantError):
            VoteLedger(-1, (("A", 1),))

    def test_from_assignment(self):
        ledger = VoteLedger.from_assignment(2, {"A": 1, "B": 0, "C": 3})
        assert ledger.assignment() == {"A": 1, "C": 3}


class TestQueries:
    def test_votes_of(self):
        ledger = VoteLedger(0, (("A", 2), ("B", 1)))
        assert ledger.votes_of("A") == 2
        assert ledger.votes_of("Z") == 0

    def test_held_by(self):
        ledger = VoteLedger(0, (("A", 2), ("B", 1), ("C", 1)))
        assert ledger.held_by({"A", "C"}) == 3
        assert ledger.held_by({"D"}) == 0

    def test_with_version(self):
        ledger = VoteLedger(0, (("A", 1),))
        assert ledger.with_version(5).version == 5
        assert ledger.with_version(5).votes == ledger.votes
        assert ledger.with_version(0) is ledger

    def test_describe(self):
        assert VoteLedger(4, (("A", 1), ("B", 2))).describe() == (
            "VN=4 votes={A:1,B:2}"
        )
