"""Unit tests for voting with witnesses (Paris's scheme)."""

import pytest

from repro.core import Rule
from repro.errors import ProtocolError
from repro.markov import availability, derive_chain
from repro.reassignment import (
    GroupConsensus,
    KeepVotes,
    WitnessVotingProtocol,
)
from repro.types import site_names


def witness_protocol(policy=None):
    return WitnessVotingProtocol(
        site_names(5), witnesses=["D", "E"], policy=policy or KeepVotes()
    )


class TestConstruction:
    def test_witness_sets(self):
        protocol = witness_protocol()
        assert protocol.witnesses == frozenset("DE")
        assert protocol.copy_sites == frozenset("ABC")

    def test_unknown_witness_rejected(self):
        with pytest.raises(ProtocolError):
            WitnessVotingProtocol(site_names(3), witnesses=["Z"])

    def test_all_witnesses_rejected(self):
        with pytest.raises(ProtocolError):
            WitnessVotingProtocol(site_names(3), witnesses=site_names(3))


class TestQuorumRule:
    def test_majority_with_a_copy_grants(self):
        protocol = witness_protocol()
        copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
        assert protocol.is_distinguished({"A", "D", "E"}, copies).granted

    def test_witness_only_current_blocks(self):
        # Update via {A, D, E}; then a partition holding the witnesses D, E
        # (current) plus stale copies B, C has a vote majority but no
        # current copy: denied.
        protocol = witness_protocol()
        copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
        outcome = protocol.attempt_update({"A", "D", "E"}, copies)
        for site in "ADE":
            copies[site] = outcome.metadata
        decision = protocol.is_distinguished({"B", "C", "D", "E"}, copies)
        assert not decision.granted
        assert decision.rule is Rule.DENIED

    def test_stale_copy_catches_up_through_a_current_copy(self):
        protocol = witness_protocol()
        copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
        outcome = protocol.attempt_update({"A", "D", "E"}, copies)
        for site in "ADE":
            copies[site] = outcome.metadata
        # A (current copy) + B (stale) + D: fine.
        decision = protocol.is_distinguished({"A", "B", "D"}, copies)
        assert decision.granted

    def test_minority_denied(self):
        protocol = witness_protocol()
        copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
        assert not protocol.is_distinguished({"A", "B"}, copies).granted


class TestAvailabilityShape:
    def test_paris_headline(self):
        # Three copies plus two witnesses nearly match five full copies
        # and beat three copies, at reasonable repair/failure ratios.
        chain = derive_chain(witness_protocol())
        for ratio in (4.0, 8.0):
            with_witnesses = chain.availability(ratio)
            five_copies = availability("voting", 5, ratio)
            three_copies = availability("voting", 3, ratio)
            assert three_copies < with_witnesses < five_copies
            assert five_copies - with_witnesses < 0.01

    def test_witnesses_cost_something(self):
        # Replacing copies by witnesses can only reduce availability
        # relative to full replication (same votes, fewer data holders).
        chain = derive_chain(witness_protocol())
        for ratio in (0.5, 1.0, 3.0):
            assert chain.availability(ratio) <= availability("voting", 5, ratio)

    def test_dynamic_policy_composes(self):
        chain = derive_chain(witness_protocol(GroupConsensus()))
        static_chain = derive_chain(witness_protocol())
        # Dynamic reassignment with witnesses beats static witnesses at
        # moderate ratios, mirroring dynamic vs static voting.
        assert chain.availability(2.0) > static_chain.availability(2.0)
