"""The Section VII equivalences, verified mechanically.

"Each participant in an update gets one vote, the distinguished site gets
one extra vote (when the number of sites participating is even), and
nonparticipants get no votes" -- the paper's claim that the dynamic family
is vote reassignment.  We verify it three ways: per-decision agreement on
exhaustive histories, identical derived Markov chains, and identical
Monte-Carlo behaviour (the latter through the shared derived-chain check).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rule, make_protocol
from repro.markov import availability, derive_chain
from repro.reassignment import (
    POLICIES,
    GroupConsensus,
    KeepVotes,
    LinearBonus,
    TrioFreeze,
    VoteLedger,
    VoteReassignmentProtocol,
)
from repro.types import site_names

PAIRS = [
    ("keep", "voting"),
    ("group-consensus", "dynamic"),
    ("linear-bonus", "dynamic-linear"),
    ("trio-freeze", "hybrid"),
]

SITES = site_names(5)

partition_labels = st.lists(
    st.integers(min_value=0, max_value=len(SITES)),
    min_size=len(SITES),
    max_size=len(SITES),
)


def groups_from(labels):
    groups = {}
    for site, label in zip(SITES, labels):
        if label == len(SITES):
            continue
        groups.setdefault(label, set()).add(site)
    return [frozenset(g) for g in groups.values()]


class TestPolicyBasics:
    def test_policy_registry(self):
        assert set(POLICIES) == {
            "keep", "group-consensus", "linear-bonus", "trio-freeze",
        }

    def test_initial_assignments(self):
        sites4 = frozenset(site_names(4))
        assert GroupConsensus().initial(sites4, "D") == {
            "A": 1, "B": 1, "C": 1, "D": 1,
        }
        assert LinearBonus().initial(sites4, "D")["D"] == 2
        assert TrioFreeze().initial(frozenset("ABC"), "C") == {
            "A": 1, "B": 1, "C": 1,
        }

    def test_keep_votes_custom_assignment(self):
        policy = KeepVotes({"A": 3, "B": 1})
        assert policy.initial(frozenset("AB"), "B") == {"A": 3, "B": 1}
        assert policy.reassign(frozenset("B"), None, "B") is None

    def test_trio_freeze_keeps_on_minimal_commit(self):
        policy = TrioFreeze()
        trio = VoteLedger(5, (("A", 1), ("B", 1), ("C", 1)))
        assert policy.reassign(frozenset("AB"), trio, "B") is None
        # but a three-site commit installs the new trio:
        assert policy.reassign(frozenset("BCD"), trio, "D") == {
            "B": 1, "C": 1, "D": 1,
        }

    def test_vote_majority_decision(self):
        protocol = VoteReassignmentProtocol(site_names(3))
        copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
        decision = protocol.is_distinguished({"A", "B"}, copies)
        assert decision.granted
        assert decision.rule is Rule.STATIC_MAJORITY
        assert not protocol.is_distinguished({"C"}, copies).granted


class TestEquivalences:
    @pytest.mark.parametrize("policy_name,protocol_name", PAIRS)
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_derived_chains_agree(self, policy_name, protocol_name, n):
        reassignment = VoteReassignmentProtocol(
            site_names(n), POLICIES[policy_name]()
        )
        chain = derive_chain(reassignment)
        for ratio in (0.4, 1.0, 2.5):
            assert chain.availability(ratio) == pytest.approx(
                availability(protocol_name, n, ratio), abs=1e-12
            )

    @pytest.mark.parametrize("policy_name,protocol_name", PAIRS)
    @given(history=st.lists(partition_labels, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_identical_decisions_on_random_histories(
        self, policy_name, protocol_name, history
    ):
        reassignment = VoteReassignmentProtocol(SITES, POLICIES[policy_name]())
        reference = make_protocol(protocol_name, SITES)
        votes_copies = dict.fromkeys(SITES, reassignment.initial_metadata())
        ref_copies = dict.fromkeys(SITES, reference.initial_metadata())
        for labels in history:
            for group in sorted(groups_from(labels), key=sorted):
                ours = reassignment.attempt_update(group, votes_copies)
                theirs = reference.attempt_update(group, ref_copies)
                assert ours.accepted == theirs.accepted, (
                    policy_name, group,
                    votes_copies, ref_copies,
                )
                if ours.accepted:
                    for site in group:
                        votes_copies[site] = ours.metadata
                        ref_copies[site] = theirs.metadata
