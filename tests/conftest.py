"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    DynamicLinearProtocol,
    DynamicVotingProtocol,
    HybridProtocol,
    MajorityVotingProtocol,
    ModifiedHybridProtocol,
    OptimalCandidateProtocol,
)
from repro.types import site_names

FIVE = site_names(5)  # ("A", "B", "C", "D", "E")


@pytest.fixture
def five_sites():
    return FIVE


@pytest.fixture
def voting5():
    return MajorityVotingProtocol(FIVE)


@pytest.fixture
def dynamic5():
    return DynamicVotingProtocol(FIVE)


@pytest.fixture
def linear5():
    return DynamicLinearProtocol(FIVE)


@pytest.fixture
def hybrid5():
    return HybridProtocol(FIVE)


@pytest.fixture
def modified5():
    return ModifiedHybridProtocol(FIVE)


@pytest.fixture
def optimal5():
    return OptimalCandidateProtocol(FIVE)


def fresh_copies(protocol):
    """All sites at the protocol's initial metadata."""
    return dict.fromkeys(protocol.sites, protocol.initial_metadata())
