"""Smoke-run the example scripts (the fast ones) as a user would.

Each example is executed in-process via runpy; the examples carry their
own assertions, so a passing run certifies both that the public API they
demonstrate works and that the README's promises hold.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "partition_scenario.py",
    "message_level_cluster.py",
    "custom_protocol.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out  # every example narrates its run


def test_quickstart_tells_the_section4_story(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "VN=10 SC=3 DS=ABC" in out      # static phase entered
    assert "VN=11 SC=3 DS=ABC" in out      # ...and preserved by the AC update
    assert "denied" in out.lower()          # the AD denial is demonstrated
    assert "linear chain" in out


def test_partition_scenario_asserts_the_narrative(capsys):
    runpy.run_path(str(EXAMPLES / "partition_scenario.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "all narrative claims reproduced" in out


def test_message_level_cluster_audits_cleanly(capsys):
    runpy.run_path(str(EXAMPLES / "message_level_cluster.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "one-copy semantics" in out
    assert "'sites': 5" in out


def test_custom_protocol_example_demonstrates_extensibility(capsys):
    runpy.run_path(str(EXAMPLES / "custom_protocol.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "derived Markov chain" in out
    assert "zero extra tooling" in out
