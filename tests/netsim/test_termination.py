"""Tests for the termination protocol: in-doubt blocking and resolution.

These are the scenarios the paper waves at standard treatments (commit
protocols interrupted by failures); the cluster must stay safe -- never
fork -- and eventually live once partitions heal.
"""

from repro.core import DynamicVotingProtocol, HybridProtocol
from repro.netsim import ReplicaCluster, RunStatus
from repro.types import site_names


def cluster_of(protocol_cls=HybridProtocol, n=5, **kwargs):
    return ReplicaCluster(protocol_cls(site_names(n)), initial_value="v0", **kwargs)


class TestInDoubtResolution:
    def test_commit_reaches_subordinate_through_decision_request(self):
        # B votes, then gets separated before the commit arrives: the
        # commit message is lost, B blocks in doubt.  When the partition
        # heals, B's periodic DecisionRequest fetches the outcome.
        cluster = cluster_of()
        run = cluster.submit_update("A", "v1")
        # Let the votes flow but cut B off before the commit returns:
        cluster.run_for(cluster.vote_window - 0.001)
        for other in "ACDE":
            cluster.fail_link("B", other)
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        assert cluster.node("B").metadata.version == 0  # missed the commit
        assert cluster.node("B").locks.holder is not None  # in doubt
        for other in "ACDE":
            cluster.repair_link("B", other)
        cluster.run_for(cluster.termination_timeout * 3)
        assert cluster.node("B").metadata.version == 1  # resolved
        assert cluster.node("B").locks.holder is None
        cluster.check_consistency()

    def test_abort_resolved_by_presumed_abort(self):
        # E votes for a coordinator whose quorum then fails: coordinator
        # aborts, but the abort to E is lost.  E later asks and hears the
        # presumed-abort answer.
        cluster = cluster_of()
        for a in "AB":
            for b in "CD":
                cluster.fail_link(a, b)
        for b in "CD":
            cluster.fail_link("E", b)
        # A can reach B and E: three of five... that's a quorum for the
        # fresh file.  Cut E off mid-protocol instead.
        run = cluster.submit_update("A", "v1")
        cluster.run_for(cluster.vote_window - 0.001)
        cluster.fail_link("A", "E")
        cluster.fail_link("B", "E")
        cluster.settle()
        # Whatever the outcome for the coordinator, E must not stay locked
        # after the partition heals.
        cluster.repair_link("A", "E")
        cluster.repair_link("B", "E")
        cluster.run_for(cluster.termination_timeout * 3)
        assert cluster.node("E").locks.holder is None
        cluster.check_consistency()

    def test_coordinator_crash_leaves_subordinates_blocked_until_repair(self):
        cluster = cluster_of()
        run = cluster.submit_update("A", "v1")
        cluster.run_for(cluster.vote_window - 0.001)  # votes are in
        cluster.fail_site("A")
        cluster.run_for(cluster.termination_timeout * 2)
        # Subordinates hold their locks: 2PC blocking, by design.
        blocked = [s for s in "BCDE" if cluster.node(s).locks.holder is not None]
        assert blocked
        cluster.repair_site("A", run_restart=False)
        cluster.run_for(cluster.termination_timeout * 3)
        assert all(cluster.node(s).locks.holder is None for s in "BCDE")
        cluster.check_consistency()

    def test_no_fork_when_commit_is_partially_delivered(self):
        # The classic hazard: the coordinator commits, some commit
        # messages are lost, and the leftover sites later try to form
        # their own quorum.  The metadata rules must block them.
        cluster = cluster_of(DynamicVotingProtocol)
        run = cluster.submit_update("A", "v1")
        cluster.run_for(cluster.vote_window + 0.001)  # decision instant
        # Immediately isolate D and E so their commit copies are lost.
        for a in "ABC":
            for b in "DE":
                cluster.fail_link(a, b)
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        # D/E blocked in doubt; whatever they try must be denied.
        probe = cluster.submit_update("D", "fork!")
        cluster.settle()
        assert probe.status in (RunStatus.DENIED, RunStatus.TIMED_OUT)
        cluster.check_consistency()


class TestDeadlockBreaking:
    def test_crossed_coordinators_resolve_by_timeout(self):
        # A and B start simultaneously: each holds its own lock and queues
        # at the other.  The lock/vote timeouts must untangle them and the
        # cluster must make progress afterwards.
        cluster = cluster_of()
        run_a = cluster.submit_update("A", "from-A")
        run_b = cluster.submit_update("B", "from-B")
        cluster.settle()
        assert {run_a.status, run_b.status} <= {
            RunStatus.COMMITTED, RunStatus.DENIED, RunStatus.TIMED_OUT
        }
        follow_up = cluster.submit_update("C", "afterwards")
        cluster.settle()
        assert follow_up.status is RunStatus.COMMITTED
        cluster.check_consistency()


class TestLateVoterExclusion:
    # A site whose vote missed the window is outside the update's
    # partition P.  If it later learns the outcome through the
    # termination protocol it must release its lock WITHOUT installing
    # the state: the committed SC counts exactly card(P), so installing
    # at an excluded site would inflate the current copies beyond P and
    # break Theorem 1's mutual exclusion (two partitions could both
    # look distinguished).

    def test_excluded_site_releases_lock_but_stays_stale(self):
        from repro.core.metadata import ReplicaMetadata
        from repro.netsim.messages import DecisionReply, VoteRequest

        cluster = cluster_of()
        node_b = cluster.node("B")
        # B votes for a run coordinated at A (injected directly, as if
        # the vote then arrived at A after the window closed).
        node_b.receive("A", VoteRequest(9001, "A"))
        assert node_b.locks.holder == 9001  # in doubt, lock held
        committed = ReplicaMetadata(1, 2, ())
        node_b.receive(
            "A",
            DecisionReply(
                9001, "A", True, committed, "v1", frozenset({"A", "C"})
            ),
        )
        assert node_b.metadata.version == 0  # excluded: must stay stale
        assert node_b.value == "v0"
        assert node_b.locks.holder is None  # but the lock is released

    def test_member_site_installs_through_decision_reply(self):
        from repro.core.metadata import ReplicaMetadata
        from repro.netsim.messages import DecisionReply, VoteRequest

        cluster = cluster_of()
        node_b = cluster.node("B")
        node_b.receive("A", VoteRequest(9002, "A"))
        committed = ReplicaMetadata(1, 3, ())
        node_b.receive(
            "A",
            DecisionReply(
                9002, "A", True, committed, "v1", frozenset({"A", "B", "C"})
            ),
        )
        assert node_b.metadata.version == 1  # member of P: installs
        assert node_b.value == "v1"
        assert node_b.locks.holder is None
