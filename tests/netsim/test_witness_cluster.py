"""Witness protocols running over the full message-level cluster.

The vote-ledger protocols share the ReplicaControlProtocol interface, so
the entire Section V machinery (locks, votes, catch-up, commit,
termination) runs them unchanged; these tests exercise witnesses
end-to-end, including the case a state-level test cannot show -- a
witness *coordinating* an update it cannot itself store meaningfully.
"""

from repro.netsim import ReplicaCluster, RunStatus
from repro.reassignment import GroupConsensus, KeepVotes, WitnessVotingProtocol
from repro.types import site_names


def witness_cluster(policy=None):
    protocol = WitnessVotingProtocol(
        site_names(5), witnesses=["D", "E"], policy=policy or KeepVotes()
    )
    return ReplicaCluster(protocol, initial_value="v0")


class TestWitnessCluster:
    def test_commit_with_witness_votes(self):
        cluster = witness_cluster()
        cluster.fail_site("B")
        cluster.fail_site("C")
        # A alone holds a copy; D, E are witnesses: 3 of 5 votes with a
        # current copy present -> commit.
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        assert cluster.node("A").value == "v1"
        # The witnesses track the version (their 'value' mirrors the
        # payload in this simulation, standing in for the version record).
        assert cluster.node("D").metadata.version == 1

    def test_witness_majority_without_a_copy_is_denied(self):
        cluster = witness_cluster()
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        # Now isolate the copies that saw v1... all copies A, B, C:
        for copy_site in ("A", "B", "C"):
            cluster.fail_site(copy_site)
        # D + E hold 2 of 5 votes -- denied on votes alone.
        run = cluster.submit_update("D", "v2")
        cluster.settle()
        assert run.status is RunStatus.DENIED

    def test_stale_copy_plus_witnesses_blocked(self):
        cluster = witness_cluster()
        # Commit v1 among {A, D, E} while B, C are cut off.
        for copy_site in ("B", "C"):
            cluster.fail_site(copy_site)
        first = cluster.submit_update("A", "v1")
        cluster.settle()
        assert first.status is RunStatus.COMMITTED
        # A (the only current copy) dies; B, C return stale.
        cluster.fail_site("A")
        cluster.repair_site("B", run_restart=False)
        cluster.repair_site("C", run_restart=False)
        cluster.settle()
        # B, C, D, E hold 4 of 5 votes, but the newest version among them
        # is attested only by witnesses: the update must be denied.
        run = cluster.submit_update("B", "v2")
        cluster.settle()
        assert run.status is RunStatus.DENIED
        # A's return restores the current copy and the system heals.
        cluster.repair_site("A")
        cluster.settle()
        retry = cluster.submit_update("B", "v2")
        cluster.settle()
        assert retry.status is RunStatus.COMMITTED
        cluster.check_consistency()

    def test_dynamic_witness_policy_end_to_end(self):
        cluster = witness_cluster(GroupConsensus())
        cluster.fail_site("E")
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        # The ledger reassigned: only the four participants hold votes now.
        ledger = cluster.node("A").metadata
        assert ledger.voters == frozenset("ABCD")
        cluster.check_consistency()
