"""Cluster behaviour on non-complete link topologies (rings, stars).

The paper's model assumes any two up sites can talk; the protocol itself
only needs *some* path.  These tests run the full message protocol over
sparse physical topologies where single failures create real partitions.
"""

from repro.core import DynamicVotingProtocol, HybridProtocol
from repro.netsim import ReplicaCluster, RunStatus
from repro.types import site_names


def ring_links(sites):
    return [(sites[i], sites[(i + 1) % len(sites)]) for i in range(len(sites))]


def star_links(sites):
    hub, *spokes = sites
    return [(hub, spoke) for spoke in spokes]


class TestRing:
    def test_healthy_ring_commits(self):
        sites = site_names(5)
        cluster = ReplicaCluster(
            HybridProtocol(sites), initial_value="v0", links=ring_links(sites)
        )
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        assert cluster.node("C").value == "v1"  # two hops away logically

    def test_one_ring_node_down_still_connected(self):
        # A ring minus one node is a path: still one partition.
        sites = site_names(5)
        cluster = ReplicaCluster(
            HybridProtocol(sites), initial_value="v0", links=ring_links(sites)
        )
        cluster.fail_site("C")
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        assert run.participants == frozenset("ABDE")

    def test_two_ring_cuts_partition(self):
        # Cutting two ring links splits the ring into two arcs.
        sites = site_names(5)
        cluster = ReplicaCluster(
            DynamicVotingProtocol(sites),
            initial_value="v0",
            links=ring_links(sites),
        )
        cluster.fail_link("A", "B")
        cluster.fail_link("C", "D")
        # Arcs: {B, C} and {D, E, A}.
        minority = cluster.submit_update("B", "nope")
        majority = cluster.submit_update("E", "v1")
        cluster.settle()
        assert minority.status is RunStatus.DENIED
        assert majority.status is RunStatus.COMMITTED
        assert majority.participants == frozenset("ADE")
        cluster.check_consistency()


class TestStar:
    def test_hub_failure_strands_all_spokes(self):
        sites = site_names(5)  # A is the hub
        cluster = ReplicaCluster(
            HybridProtocol(sites), initial_value="v0", links=star_links(sites)
        )
        cluster.fail_site("A")
        run = cluster.submit_update("B", "v1")
        cluster.settle()
        assert run.status is RunStatus.DENIED  # every spoke is alone
        cluster.repair_site("A")
        cluster.settle()
        retry = cluster.submit_update("B", "v1")
        cluster.settle()
        assert retry.status is RunStatus.COMMITTED

    def test_spoke_failure_is_tolerated(self):
        sites = site_names(4)
        cluster = ReplicaCluster(
            DynamicVotingProtocol(sites),
            initial_value="v0",
            links=star_links(sites),
        )
        cluster.fail_site("D")
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        assert run.participants == frozenset("ABC")

    def test_dynamic_voting_survives_cascading_spoke_loss(self):
        sites = site_names(5)
        cluster = ReplicaCluster(
            DynamicVotingProtocol(sites),
            initial_value="v0",
            links=star_links(sites),
        )
        for k, spoke in enumerate(("E", "D")):
            cluster.fail_site(spoke)
            run = cluster.submit_update("A", f"v{k + 1}")
            cluster.settle()
            assert run.status is RunStatus.COMMITTED
        # Down to {A, B, C} with cardinality 3: one more spoke loss still
        # leaves a 2-of-3 majority.
        cluster.fail_site("C")
        final = cluster.submit_update("A", "v3")
        cluster.settle()
        assert final.status is RunStatus.COMMITTED
        assert cluster.node("A").metadata.cardinality == 2
