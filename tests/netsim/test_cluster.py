"""Integration tests for the message-level cluster (Section V end to end)."""

import pytest

from repro.core import (
    DynamicVotingProtocol,
    HybridProtocol,
    MajorityVotingProtocol,
)
from repro.netsim import ReplicaCluster, RunStatus
from repro.types import site_names


def hybrid_cluster(n=5, **kwargs):
    return ReplicaCluster(HybridProtocol(site_names(n)), initial_value="v0", **kwargs)


class TestNormalOperation:
    def test_update_commits_everywhere(self):
        cluster = hybrid_cluster()
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        for site in site_names(5):
            assert cluster.node(site).value == "v1"
            assert cluster.node(site).metadata.version == 1

    def test_sequential_updates_chain_versions(self):
        cluster = hybrid_cluster()
        for index, site in enumerate(("A", "C", "E"), start=1):
            run = cluster.submit_update(site, f"v{index}")
            cluster.settle()
            assert run.status is RunStatus.COMMITTED
        assert cluster.node("B").metadata.version == 3
        cluster.check_consistency()

    def test_read_round_trip(self):
        cluster = hybrid_cluster()
        cluster.submit_update("A", "payload")
        cluster.settle()
        read = cluster.submit_read("D")
        cluster.settle()
        assert read.status is RunStatus.COMPLETED
        assert read.result == "payload"

    def test_participants_recorded(self):
        cluster = hybrid_cluster()
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.participants == frozenset(site_names(5))

    def test_concurrent_coordinators_serialise(self):
        # Two simultaneous updates: locks force one to lose its quorum or
        # queue; both eventually finish, and the history stays linear.
        cluster = hybrid_cluster()
        run1 = cluster.submit_update("A", "x")
        run2 = cluster.submit_update("B", "y")
        cluster.settle()
        statuses = {run1.status, run2.status}
        assert RunStatus.COMMITTED in statuses
        cluster.check_consistency()


class TestPartitions:
    def split(self, cluster, left, right):
        for a in left:
            for b in right:
                cluster.fail_link(a, b)

    def test_minority_denied_majority_commits(self):
        cluster = hybrid_cluster()
        self.split(cluster, "ABC", "DE")
        good = cluster.submit_update("A", "v1")
        bad = cluster.submit_update("E", "v-bad")
        cluster.settle()
        assert good.status is RunStatus.COMMITTED
        assert bad.status is RunStatus.DENIED
        assert cluster.node("D").metadata.version == 0

    def test_static_phase_reached_through_messages(self):
        cluster = hybrid_cluster()
        self.split(cluster, "ABC", "DE")
        cluster.submit_update("A", "v1")
        cluster.settle()
        meta = cluster.node("A").metadata
        assert meta.cardinality == 3
        assert meta.distinguished == ("A", "B", "C")

    def test_healing_lets_stale_side_catch_up(self):
        cluster = hybrid_cluster()
        self.split(cluster, "ABC", "DE")
        cluster.submit_update("A", "v1")
        cluster.settle()
        for a in "ABC":
            for b in "DE":
                cluster.repair_link(a, b)
        run = cluster.submit_update("D", "v2")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        assert cluster.node("E").value == "v2"

    def test_no_fork_across_partition_storm(self):
        cluster = ReplicaCluster(
            DynamicVotingProtocol(site_names(5)), initial_value=0
        )
        self.split(cluster, "ABC", "DE")
        cluster.submit_update("A", 1)
        cluster.settle()
        self.split(cluster, "AB", "C")
        cluster.submit_update("A", 2)
        cluster.submit_update("C", 3)
        cluster.submit_update("D", 4)
        cluster.settle()
        cluster.check_consistency()


class TestSiteFailures:
    def test_update_with_a_site_down(self):
        cluster = hybrid_cluster()
        cluster.fail_site("E")
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        meta = cluster.node("A").metadata
        assert meta.cardinality == 4

    def test_coordinator_failure_kills_the_run(self):
        cluster = hybrid_cluster()
        run = cluster.submit_update("A", "v1")
        cluster.fail_site("A")  # before any message flows
        cluster.settle()
        assert run.status is RunStatus.FAILED

    def test_make_current_on_repair(self):
        cluster = hybrid_cluster()
        cluster.fail_site("E")
        cluster.submit_update("A", "v1")
        cluster.settle()
        restart = cluster.repair_site("E")
        cluster.settle()
        assert restart.status is RunStatus.COMMITTED
        assert cluster.node("E").value == "v1"
        # the restart counts as an update: version goes beyond 1
        assert cluster.node("E").metadata.version == 2

    def test_recovering_minority_stays_blocked(self):
        cluster = ReplicaCluster(
            MajorityVotingProtocol(site_names(3)), initial_value="v0"
        )
        cluster.fail_site("A")
        cluster.fail_site("B")
        cluster.settle()
        restart = cluster.repair_site("B", run_restart=True)
        # B and C are a majority of 3 -- wait, they are!  Use a harder cut:
        cluster.settle()
        assert restart.status is RunStatus.COMMITTED

    def test_lone_survivor_cannot_update(self):
        cluster = hybrid_cluster()
        for site in "BCDE":
            cluster.fail_site(site)
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.DENIED


class TestDurability:
    def test_copies_survive_failure(self):
        cluster = hybrid_cluster()
        cluster.submit_update("A", "v1")
        cluster.settle()
        cluster.fail_site("C")
        assert cluster.node("C").metadata.version == 1
        assert cluster.node("C").value == "v1"

    def test_locks_do_not_survive_failure(self):
        cluster = hybrid_cluster()
        node = cluster.node("C")
        node.locks.request(99, lambda: None)
        cluster.fail_site("C")
        assert node.locks.holder is None

    def test_history_records_each_version_once(self):
        cluster = hybrid_cluster()
        cluster.submit_update("A", "v1")
        cluster.settle()
        cluster.submit_update("B", "v2")
        cluster.settle()
        versions = [a.version for a in cluster.node("D").history]
        assert versions == [0, 1, 2]
