"""Unit tests for the coordinator's individual phases and timeouts."""

import pytest

from repro.core import HybridProtocol
from repro.errors import SimulationError
from repro.netsim import ReplicaCluster, RunStatus
from repro.types import site_names


def cluster_of(**kwargs):
    return ReplicaCluster(
        HybridProtocol(site_names(5)), initial_value="v0", **kwargs
    )


class TestLockPhase:
    def test_lock_timeout_when_holder_never_releases(self):
        cluster = cluster_of()
        # Occupy A's lock manager out-of-band so the run can never start.
        cluster.node("A").locks.request(999_999, lambda: None)
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.TIMED_OUT
        assert "lock" in run.reason

    def test_queued_run_proceeds_once_lock_frees(self):
        cluster = cluster_of()
        blocker_id = 999_998
        cluster.node("A").locks.request(blocker_id, lambda: None)
        run = cluster.submit_update("A", "v1")
        # Release the blocker before the timeout fires.
        cluster.run_for(cluster.lock_timeout / 2)
        cluster.node("A").locks.release(blocker_id)
        cluster.settle()
        assert run.status is RunStatus.COMMITTED

    def test_double_start_rejected_mid_run(self):
        cluster = cluster_of()
        run = cluster.submit_update("A", "v1")
        cluster.run_for(cluster.network.latency / 4)  # locking/voting now
        assert not run.finished
        with pytest.raises(SimulationError):
            run.start()
        cluster.settle()
        assert run.status is RunStatus.COMMITTED

    def test_start_after_prestart_death_is_a_noop(self):
        cluster = cluster_of()
        run = cluster.submit_update("A", "v1")
        cluster.fail_site("A")  # kills the run before its start callback
        assert run.status is RunStatus.FAILED
        run.start()  # must not raise
        assert run.status is RunStatus.FAILED


class TestVotePhase:
    def test_late_votes_are_ignored(self):
        # Slow down the far side by cutting it off during the vote window;
        # the coordinator decides with whoever answered.
        cluster = cluster_of()
        run = cluster.submit_update("A", "v1")
        cluster.run_for(cluster.vote_window / 8)
        for other in ("D", "E"):
            cluster.fail_link("A", other)
            cluster.fail_link("B", other)
            cluster.fail_link("C", other)
        cluster.fail_link("D", "E")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        assert run.participants >= frozenset("ABC")

    def test_decision_recorded_on_denial(self):
        cluster = cluster_of()
        for other in "BCDE":
            cluster.fail_site(other)
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        assert run.status is RunStatus.DENIED
        assert run.decision is not None
        assert not run.decision.granted


class TestCatchUpPhase:
    def split(self, cluster, left, right):
        for a in left:
            for b in right:
                cluster.fail_link(a, b)

    def make_stale_coordinator(self, cluster):
        """Commit v1 in {A,B,C}; D is stale afterwards."""
        self.split(cluster, "ABC", "DE")
        first = cluster.submit_update("A", "v1")
        cluster.settle()
        assert first.status is RunStatus.COMMITTED
        for a in "ABC":
            for b in "DE":
                cluster.repair_link(a, b)

    def test_stale_coordinator_fetches_before_commit(self):
        cluster = cluster_of()
        self.make_stale_coordinator(cluster)
        run = cluster.submit_update("D", "v2")
        cluster.settle()
        assert run.status is RunStatus.COMMITTED
        # D committed on top of v1: its history carries both versions.
        versions = [a.version for a in cluster.node("D").history]
        assert versions[-1] == run.decision.max_version + 1

    def test_catch_up_timeout_aborts(self):
        cluster = cluster_of()
        self.make_stale_coordinator(cluster)
        run = cluster.submit_update("D", "v2")
        # Let the votes arrive, then isolate D completely (a partial cut
        # would leave an indirect route through E) before the catch-up
        # reply can return.
        cluster.run_for(cluster.vote_window + cluster.network.latency / 2)
        for other in "ABCE":
            cluster.fail_link("D", other)
        cluster.settle()
        assert run.status in (RunStatus.TIMED_OUT, RunStatus.DENIED)
        cluster.check_consistency()

    def test_read_from_stale_coordinator_serves_current_value(self):
        cluster = cluster_of()
        self.make_stale_coordinator(cluster)
        read = cluster.submit_read("D")
        cluster.settle()
        assert read.status is RunStatus.COMPLETED
        assert read.result == "v1"
        # Reads leave D's copy untouched (footnote 5).
        assert cluster.node("D").metadata.version in (0, 1)


class TestDescribe:
    def test_describe_mentions_kind_and_status(self):
        cluster = cluster_of()
        run = cluster.submit_read("A")
        cluster.settle()
        text = run.describe()
        assert "[read]" in text and "completed" in text
