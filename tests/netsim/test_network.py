"""Unit tests for the message network (latency, loss under partition)."""

import pytest

from repro.errors import NetworkError
from repro.netsim import MessageNetwork, VoteRequest
from repro.sim import Simulator, Topology
from repro.types import site_names


def make_network(n=3, latency=0.01):
    sim = Simulator()
    topo = Topology(site_names(n))
    network = MessageNetwork(sim, topo, latency)
    inboxes = {s: [] for s in site_names(n)}
    for s in site_names(n):
        network.register(s, lambda sender, msg, s=s: inboxes[s].append((sender, msg)))
    return sim, topo, network, inboxes


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, topo, network, inboxes = make_network()
        network.send("A", "B", VoteRequest(1, "A"))
        assert inboxes["B"] == []
        sim.run()
        assert len(inboxes["B"]) == 1
        assert sim.now == pytest.approx(0.01)

    def test_sender_identity_passed(self):
        sim, topo, network, inboxes = make_network()
        network.send("A", "B", VoteRequest(1, "A"))
        sim.run()
        sender, message = inboxes["B"][0]
        assert sender == "A"
        assert message.run_id == 1

    def test_fifo_between_pair(self):
        sim, topo, network, inboxes = make_network()
        network.send("A", "B", VoteRequest(1, "A"))
        network.send("A", "B", VoteRequest(2, "A"))
        sim.run()
        assert [m.run_id for _, m in inboxes["B"]] == [1, 2]

    def test_broadcast(self):
        sim, topo, network, inboxes = make_network()
        network.broadcast("A", ["B", "C"], lambda d: VoteRequest(1, "A"))
        sim.run()
        assert len(inboxes["B"]) == 1 and len(inboxes["C"]) == 1


class TestLoss:
    def test_lost_when_destination_fails_in_flight(self):
        sim, topo, network, inboxes = make_network()
        network.send("A", "B", VoteRequest(1, "A"))
        topo.fail_site("B")
        sim.run()
        assert inboxes["B"] == []
        assert network.statistics["lost"] == 1

    def test_lost_when_sender_fails_in_flight(self):
        sim, topo, network, inboxes = make_network()
        network.send("A", "B", VoteRequest(1, "A"))
        topo.fail_site("A")
        sim.run()
        assert inboxes["B"] == []

    def test_lost_when_partition_separates_in_flight(self):
        sim, topo, network, inboxes = make_network()
        network.send("A", "B", VoteRequest(1, "A"))
        topo.fail_link("A", "B")
        topo.fail_link("A", "C")  # isolate A completely
        sim.run()
        assert inboxes["B"] == []

    def test_delivered_within_partition(self):
        sim, topo, network, inboxes = make_network()
        topo.fail_link("A", "C")
        network.send("A", "B", VoteRequest(1, "A"))
        sim.run()
        assert len(inboxes["B"]) == 1

    def test_indirect_connectivity_counts(self):
        # A-B and B-C up, A-C down: A and C are still one partition.
        sim, topo, network, inboxes = make_network()
        topo.fail_link("A", "C")
        network.send("A", "C", VoteRequest(1, "A"))
        sim.run()
        assert len(inboxes["C"]) == 1


class TestValidation:
    def test_down_sender_rejected(self):
        sim, topo, network, _ = make_network()
        topo.fail_site("A")
        with pytest.raises(NetworkError):
            network.send("A", "B", VoteRequest(1, "A"))

    def test_unknown_destination_rejected(self):
        sim, topo, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.send("A", "Z", VoteRequest(1, "A"))

    def test_nonpositive_latency_rejected(self):
        sim = Simulator()
        with pytest.raises(NetworkError):
            MessageNetwork(sim, Topology(site_names(2)), latency=0.0)

    def test_statistics(self):
        sim, topo, network, _ = make_network()
        network.send("A", "B", VoteRequest(1, "A"))
        sim.run()
        stats = network.statistics
        assert stats == {"sent": 1, "delivered": 1, "lost": 0}
