"""Causal tracing threaded through live netsim runs: DAG, SLOs, determinism."""

from __future__ import annotations

import pytest

from repro.core import make_protocol
from repro.netsim import ReplicaCluster, reset_run_ids
from repro.obs import MetricsRegistry
from repro.obs.causal import NULL_CAUSAL
from repro.obs.query import CausalDag, check_assertions, operation_stats
from repro.types import site_names


def run_workload(
    *, causal: bool = True, seed: int = 0, metrics=None
) -> ReplicaCluster:
    """update; fail last site; update; repair; read -- run ids rewound so
    reruns are schedule-identical (the determinism contract under test)."""
    reset_run_ids()
    sites = site_names(3)
    cluster = ReplicaCluster(
        make_protocol("hybrid", sites),
        initial_value="v0",
        causal=causal,
        causal_seed=seed,
        metrics=metrics,
    )
    cluster.submit_update(sites[0], "v1")
    cluster.settle()
    cluster.fail_site(sites[-1])
    cluster.submit_update(sites[0], "v2")
    cluster.settle()
    cluster.repair_site(sites[-1])
    cluster.settle()
    cluster.submit_read(sites[1])
    cluster.settle()
    return cluster


def causal_jsonl(cluster: ReplicaCluster) -> str:
    assert cluster.trace_log is not None
    return cluster.trace_log.to_jsonl(categories=("causal",))


class TestLiveDag:
    def test_live_run_passes_the_assertion_catalog(self):
        dag = CausalDag.from_jsonl(causal_jsonl(run_workload()))
        assert check_assertions(dag) == []
        assert len(dag.traces()) >= 3  # two updates, recovery, read

    def test_commit_causally_follows_its_votes(self):
        dag = CausalDag.from_jsonl(causal_jsonl(run_workload()))
        commits = dag.find("commit")
        assert commits
        for commit in commits:
            ancestors = dag.ancestors(commit.event_id)
            votes = [
                v
                for v in dag.find("vote", run_id=commit.run_id)
                if v.event_id in ancestors
            ]
            assert votes, f"commit of run {commit.run_id} has no vote ancestor"

    def test_critical_path_phases_sum_to_latency(self):
        dag = CausalDag.from_jsonl(causal_jsonl(run_workload()))
        rows = {row.run_id: row for row in operation_stats(dag)}
        for commit in dag.find("commit"):
            (finish,) = dag.find("finish", trace_id=commit.trace_id)
            path = dag.critical_path(finish.event_id)
            assert sum(path.by_phase().values()) == pytest.approx(
                path.total, abs=1e-12
            )
            assert path.total == pytest.approx(rows[commit.run_id].latency)

    def test_messages_carry_contexts_only_when_enabled(self):
        traced = run_workload(causal=True)
        assert traced.causal.enabled
        untraced = run_workload(causal=False)
        assert untraced.causal is NULL_CAUSAL
        assert untraced.trace_log is None


class TestDeterminism:
    def test_same_seed_reruns_export_identical_causal_traces(self):
        first = causal_jsonl(run_workload(seed=11))
        second = causal_jsonl(run_workload(seed=11))
        assert first == second

    def test_seed_rekeys_trace_ids_but_not_structure(self):
        first = CausalDag.from_jsonl(causal_jsonl(run_workload(seed=1)))
        second = CausalDag.from_jsonl(causal_jsonl(run_workload(seed=2)))
        assert set(first.traces()).isdisjoint(second.traces())
        assert [e.kind for e in first.events] == [e.kind for e in second.events]
        assert [e.lamport for e in first.events] == [
            e.lamport for e in second.events
        ]


class TestSloMetrics:
    def test_update_outcomes_feed_op_metrics(self):
        registry = MetricsRegistry()
        run_workload(metrics=registry)
        assert registry.counter("op.committed").value >= 2
        assert registry.counter("op.aborted").value == 0
        assert registry.gauge("op.abort.rate").value == 0.0
        latency = registry.histogram("op.commit.latency")
        assert latency.describe()["count"] >= 2
        assert latency.quantile(50) > 0.0

    def test_aborts_move_the_abort_rate(self):
        registry = MetricsRegistry()
        reset_run_ids()
        sites = site_names(3)
        cluster = ReplicaCluster(
            make_protocol("hybrid", sites),
            initial_value="v0",
            metrics=registry,
        )
        cluster.fail_site(sites[1])
        cluster.fail_site(sites[2])
        cluster.submit_update(sites[0], "v1")  # minority partition: aborts
        cluster.settle()
        assert registry.counter("op.aborted").value == 1
        assert registry.gauge("op.abort.rate").value == 1.0
