"""Tests for per-run latency accounting."""

import pytest

from repro.core import HybridProtocol
from repro.netsim import ReplicaCluster, RunStatus
from repro.types import site_names


class TestRunLatency:
    def test_committed_run_latency_is_protocol_rounds(self):
        cluster = ReplicaCluster(
            HybridProtocol(site_names(5)), initial_value=0, latency=0.01
        )
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        # one vote round closes at the vote window (4 x latency), commit is
        # local at that instant: latency == vote_window.
        assert run.latency == pytest.approx(cluster.vote_window, abs=1e-9)

    def test_catch_up_adds_a_round_trip(self):
        cluster = ReplicaCluster(
            HybridProtocol(site_names(5)), initial_value=0, latency=0.01
        )
        for a in "ABC":
            for b in "DE":
                cluster.fail_link(a, b)
        cluster.submit_update("A", "v1")
        cluster.settle()
        for a in "ABC":
            for b in "DE":
                cluster.repair_link(a, b)
        stale = cluster.submit_update("D", "v2")
        cluster.settle()
        assert stale.status is RunStatus.COMMITTED
        expected = cluster.vote_window + 2 * cluster.network.latency
        assert stale.latency == pytest.approx(expected, abs=1e-9)

    def test_pending_run_has_no_latency(self):
        cluster = ReplicaCluster(HybridProtocol(site_names(3)), initial_value=0)
        run = cluster.submit_update("A", "v1")
        assert run.latency is None
        cluster.settle()
        assert run.latency is not None

    def test_latency_summary_aggregates_commits_only(self):
        cluster = ReplicaCluster(HybridProtocol(site_names(3)), initial_value=0)
        for k in range(3):
            cluster.submit_update("A", k)
            cluster.settle()
        cluster.fail_site("B")
        cluster.fail_site("C")
        denied = cluster.submit_update("A", "x")
        cluster.settle()
        assert denied.status is RunStatus.DENIED
        summary = cluster.latency_summary()
        assert summary["count"] == 3.0
        assert summary["min"] <= summary["mean"] <= summary["max"]

    def test_empty_summary(self):
        cluster = ReplicaCluster(HybridProtocol(site_names(3)), initial_value=0)
        assert cluster.latency_summary() == {}
