"""Tests for the netsim trace log."""

from repro.core import HybridProtocol
from repro.netsim import ReplicaCluster, TraceLog
from repro.types import site_names


def traced_cluster():
    return ReplicaCluster(
        HybridProtocol(site_names(3)), initial_value="v0", trace=True
    )


class TestTraceLog:
    def test_record_and_filter(self):
        log = TraceLog()
        log.record(1.0, "run", "something happened")
        log.record(2.0, "message", "A -> B VoteRequest(run 1)")
        assert len(log) == 2
        assert len(log.category("run")) == 1
        assert len(log.matching("VoteRequest")) == 1

    def test_capacity_bound(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(float(i), "run", f"e{i}")
        assert len(log) == 2
        assert log.dropped == 3

    def test_render_with_limit(self):
        log = TraceLog()
        for i in range(5):
            log.record(float(i), "run", f"e{i}")
        text = log.render(limit=2)
        assert "e0" in text and "e1" in text
        assert "(3 more)" in text

    def test_render_filters_categories(self):
        log = TraceLog()
        log.record(0.0, "run", "keep me")
        log.record(0.0, "message", "drop me")
        text = log.render(categories=["run"])
        assert "keep me" in text and "drop me" not in text


class TestClusterTracing:
    def test_disabled_by_default(self):
        cluster = ReplicaCluster(HybridProtocol(site_names(3)), initial_value=0)
        assert cluster.trace_log is None

    def test_run_lifecycle_recorded(self):
        cluster = traced_cluster()
        run = cluster.submit_update("A", "v1")
        cluster.settle()
        log = cluster.trace_log
        assert log.matching(f"run {run.run_id} [update] submitted")
        assert log.matching(f"run {run.run_id} [update] at A: committed")

    def test_messages_recorded(self):
        cluster = traced_cluster()
        cluster.submit_update("A", "v1")
        cluster.settle()
        deliveries = cluster.trace_log.category("message")
        kinds = {d.description.split()[3].split("(")[0] for d in deliveries}
        assert "VoteRequest" in kinds
        assert "VoteReply" in kinds
        assert "CommitMessage" in kinds

    def test_losses_recorded_with_reason(self):
        cluster = traced_cluster()
        cluster.submit_update("A", "v1")
        cluster.run_for(cluster.vote_window / 8)  # requests in flight
        cluster.fail_site("B")
        cluster.settle()
        lost = cluster.trace_log.matching("LOST")
        assert lost
        assert any("endpoint down" in e.description for e in lost)

    def test_topology_changes_recorded(self):
        cluster = traced_cluster()
        cluster.fail_link("A", "B")
        cluster.fail_site("C")
        cluster.repair_site("C", run_restart=False)
        log = cluster.trace_log
        assert log.matching("link A-B failed")
        assert log.matching("site C failed")
        assert log.matching("site C repaired")

    def test_events_are_chronological(self):
        cluster = traced_cluster()
        cluster.submit_update("A", "v1")
        cluster.settle()
        times = [e.time for e in cluster.trace_log.events]
        assert times == sorted(times)
