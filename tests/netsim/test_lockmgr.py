"""Unit tests for the per-site lock manager."""

import pytest

from repro.errors import LockError
from repro.netsim import LockManager


class TestGrantOrder:
    def test_free_lock_granted_immediately(self):
        manager = LockManager("A")
        granted = []
        manager.request(1, lambda: granted.append(1))
        assert granted == [1]
        assert manager.holder == 1

    def test_fifo_queueing(self):
        manager = LockManager("A")
        granted = []
        manager.request(1, lambda: granted.append(1))
        manager.request(2, lambda: granted.append(2))
        manager.request(3, lambda: granted.append(3))
        assert granted == [1]
        manager.release(1)
        assert granted == [1, 2]
        manager.release(2)
        assert granted == [1, 2, 3]

    def test_reentrant_request_rejected(self):
        manager = LockManager("A")
        manager.request(1, lambda: None)
        with pytest.raises(LockError):
            manager.request(1, lambda: None)

    def test_duplicate_waiting_request_rejected(self):
        manager = LockManager("A")
        manager.request(1, lambda: None)
        manager.request(2, lambda: None)
        with pytest.raises(LockError):
            manager.request(2, lambda: None)


class TestRelease:
    def test_release_unknown_run_rejected(self):
        manager = LockManager("A")
        with pytest.raises(LockError):
            manager.release(9)

    def test_withdraw_queued_request(self):
        manager = LockManager("A")
        granted = []
        manager.request(1, lambda: granted.append(1))
        manager.request(2, lambda: granted.append(2))
        manager.release(2)  # withdraw before grant
        manager.release(1)
        assert granted == [1]
        assert manager.holder is None

    def test_release_if_involved_is_silent(self):
        manager = LockManager("A")
        manager.release_if_involved(42)  # no error

    def test_waiting_runs_listed_in_order(self):
        manager = LockManager("A")
        manager.request(1, lambda: None)
        manager.request(2, lambda: None)
        manager.request(3, lambda: None)
        assert manager.waiting_runs() == (2, 3)


class TestFailure:
    def test_clear_drops_everything_without_granting(self):
        manager = LockManager("A")
        granted = []
        manager.request(1, lambda: granted.append(1))
        manager.request(2, lambda: granted.append(2))
        manager.clear()
        assert manager.holder is None
        assert manager.waiting_runs() == ()
        assert granted == [1]  # run 2 was never granted
