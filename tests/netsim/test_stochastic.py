"""Unit tests for the message-level stochastic driver."""

import pytest

from repro.core import DynamicVotingProtocol, HybridProtocol
from repro.errors import SimulationError
from repro.netsim import ClusterModelDriver, ReplicaCluster
from repro.sim import Rates, RandomStreams
from repro.types import site_names


def driver_for(protocol_cls=HybridProtocol, seed=11, ratio=2.0, latency=0.002):
    cluster = ReplicaCluster(
        protocol_cls(site_names(5)), initial_value=0, latency=latency
    )
    return (
        cluster,
        ClusterModelDriver(
            cluster,
            Rates(0.01, 0.01 * ratio),
            probe_rate=1.0,
            streams=RandomStreams(seed),
        ),
    )


class TestDriver:
    def test_probe_accounting_is_complete(self):
        _, driver = driver_for()
        stats = driver.run(2_000.0)
        assert stats.probes > 0
        tallied = (
            stats.committed + stats.arrived_down + stats.denied + stats.other
        )
        assert tallied == stats.probes

    def test_consistency_survives_the_storm(self):
        cluster, driver = driver_for(DynamicVotingProtocol, seed=23)
        driver.run(2_000.0)
        cluster.check_consistency()

    def test_reproducible(self):
        _, d1 = driver_for(seed=5)
        _, d2 = driver_for(seed=5)
        assert d1.run(1_000.0).availability == d2.run(1_000.0).availability

    def test_down_arrivals_match_up_probability(self):
        _, driver = driver_for(seed=7, ratio=2.0)
        stats = driver.run(6_000.0)
        # P(arrival site down) should be about 1/(1+ratio) = 1/3.
        fraction = stats.arrived_down / stats.probes
        assert fraction == pytest.approx(1 / 3, abs=0.06)

    def test_availability_in_the_right_region(self):
        from repro.markov import availability

        _, driver = driver_for(seed=3)
        stats = driver.run(6_000.0)
        analytic = availability("hybrid", 5, 2.0)
        assert stats.availability == pytest.approx(analytic, abs=0.08)

    def test_nonpositive_probe_rate_rejected(self):
        cluster = ReplicaCluster(HybridProtocol(site_names(3)), initial_value=0)
        with pytest.raises(SimulationError):
            ClusterModelDriver(
                cluster, Rates(1.0, 1.0), probe_rate=0.0, streams=RandomStreams(1)
            )

    def test_past_horizon_rejected(self):
        _, driver = driver_for()
        with pytest.raises(SimulationError):
            driver.run(0.0)
