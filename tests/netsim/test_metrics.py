"""Integration tests: the message-level simulator's telemetry."""

from __future__ import annotations

from repro.core.hybrid import HybridProtocol
from repro.netsim.cluster import ReplicaCluster
from repro.obs import MetricsRegistry, NULL_REGISTRY, NULL_TRACKER
from repro.types import site_names


def build_cluster(n: int = 3, **kwargs) -> ReplicaCluster:
    return ReplicaCluster(
        HybridProtocol(site_names(n)), initial_value="v0", **kwargs
    )


class TestDisabledByDefault:
    def test_cluster_without_metrics_uses_the_null_registry(self):
        cluster = build_cluster()
        assert cluster.metrics is NULL_REGISTRY
        assert cluster.spans is NULL_TRACKER
        cluster.submit_update("A", "v1")
        cluster.settle()
        assert cluster.metrics.names() == ()


class TestMessageCounters:
    def test_counts_by_message_type(self):
        registry = MetricsRegistry()
        cluster = build_cluster(metrics=registry)
        cluster.submit_update("A", "v1")
        cluster.settle()
        snapshot = registry.snapshot()
        # 2PC fan-out to the two subordinates, both up: sent == delivered.
        assert snapshot["netsim.message.sent.VoteRequest"]["value"] == 2
        assert snapshot["netsim.message.delivered.VoteRequest"]["value"] == 2
        assert snapshot["netsim.message.sent.CommitMessage"]["value"] == 2
        assert registry.counter("netsim.votes.requested").value == 2
        assert registry.counter("netsim.votes.replies").value == 2

    def test_lost_messages_counted_by_reason(self):
        registry = MetricsRegistry()
        cluster = build_cluster(metrics=registry)
        cluster.fail_site("C")
        cluster.submit_update("A", "v1")
        cluster.settle()
        assert (
            registry.counter("netsim.message.lost.endpoint-down").value > 0
        )


class TestRunAndTopologyCounters:
    def test_run_outcomes_and_latency(self):
        registry = MetricsRegistry()
        cluster = build_cluster(metrics=registry)
        cluster.submit_update("A", "v1")
        cluster.settle()
        cluster.submit_read("B")
        cluster.settle()
        snapshot = registry.snapshot()
        assert snapshot["netsim.run.submitted.update"]["value"] == 1
        assert snapshot["netsim.run.submitted.read"]["value"] == 1
        assert snapshot["netsim.run.committed"]["value"] == 1
        assert snapshot["netsim.run.completed"]["value"] == 1
        assert snapshot["netsim.run.latency"]["count"] == 2
        assert snapshot["netsim.run.latency"]["min"] > 0

    def test_topology_counters(self):
        registry = MetricsRegistry()
        cluster = build_cluster(metrics=registry)
        cluster.fail_site("C")
        cluster.settle()
        cluster.repair_site("C")
        cluster.settle()
        assert registry.counter("netsim.topology.site-failures").value == 1
        assert registry.counter("netsim.topology.site-repairs").value == 1


class TestSpans:
    def test_phase_spans_recorded_and_all_closed(self):
        registry = MetricsRegistry()
        cluster = build_cluster(metrics=registry)
        cluster.submit_update("A", "v1")
        cluster.settle()
        cluster.fail_site("C")
        cluster.submit_update("A", "v2")  # leaves C with a stale copy
        cluster.settle()
        cluster.repair_site("C")  # triggers make-current with catch-up
        cluster.settle()
        snapshot = registry.snapshot()
        assert snapshot["span.run"]["count"] >= 2
        assert snapshot["span.vote"]["count"] >= 2
        assert snapshot["span.catch-up"]["count"] >= 1
        assert snapshot["span.in-doubt"]["count"] >= 2
        assert cluster.spans.open_count == 0

    def test_vote_span_nests_inside_the_run_span(self):
        registry = MetricsRegistry()
        cluster = build_cluster(metrics=registry)
        cluster.submit_update("A", "v1")
        cluster.settle()
        snapshot = registry.snapshot()
        vote = snapshot["span.vote"]
        run = snapshot["span.run"]
        assert vote["max"] <= run["max"] + 1e-12

    def test_coordinator_failure_closes_its_spans_blocks_subordinates(self):
        registry = MetricsRegistry()
        cluster = build_cluster(
            metrics=registry, latency=0.01, vote_window=10.0
        )
        cluster.submit_update("A", "v1")
        cluster.run_for(0.015)  # vote round in flight
        cluster.fail_site("A")
        cluster.settle()
        # The coordinator's run/vote spans closed with the failure; the
        # subordinates' in-doubt spans stay open -- honest 2PC blocking.
        assert registry.snapshot()["span.run"]["count"] == 1
        assert cluster.spans.open_count == 2
        cluster.repair_site("A")
        cluster.settle()  # presumed abort settles the blocked subordinates
        assert cluster.spans.open_count == 0
        assert registry.counter("netsim.termination.probes").value >= 2


class TestLockWaits:
    def test_contended_lock_counts_a_wait(self):
        registry = MetricsRegistry()
        cluster = build_cluster(metrics=registry)
        cluster.submit_update("A", "v1")
        cluster.submit_update("B", "v2")  # contends for the same item
        cluster.settle()
        assert registry.counter("netsim.lock.waits").value >= 1


class TestDeterminism:
    def test_two_identical_workloads_identical_snapshots(self):
        def run() -> dict:
            registry = MetricsRegistry()
            cluster = build_cluster(metrics=registry)
            cluster.submit_update("A", "v1")
            cluster.settle()
            cluster.fail_site("C")
            cluster.submit_update("A", "v2")
            cluster.settle()
            cluster.repair_site("C")
            cluster.settle()
            return registry.snapshot()

        assert run() == run()
