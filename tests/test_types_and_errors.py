"""Unit tests for the shared primitives and the exception hierarchy."""

import pytest

import repro.errors as errors
from repro.types import canonical_order, site_names, validate_sites


class TestSiteNames:
    def test_letters_first(self):
        assert site_names(3) == ("A", "B", "C")
        assert site_names(26)[-1] == "Z"

    def test_numbered_beyond_the_alphabet(self):
        names = site_names(30)
        assert names[26] == "S26"
        assert len(set(names)) == 30

    def test_zero_sites(self):
        assert site_names(0) == ()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            site_names(-1)


class TestCanonicalOrder:
    def test_sorted(self):
        assert canonical_order({"C", "A", "B"}) == ("A", "B", "C")

    def test_idempotent(self):
        once = canonical_order("CBA")
        assert canonical_order(once) == once


class TestValidateSites:
    def test_roundtrip(self):
        assert validate_sites(["B", "A"]) == ("B", "A")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_sites([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            validate_sites(["A", "A"])


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError), name

    def test_domain_parents(self):
        assert issubclass(errors.MetadataInvariantError, errors.ProtocolError)
        assert issubclass(errors.DeadlockError, errors.LockError)
        assert issubclass(errors.LockError, errors.SimulationError)
        assert issubclass(errors.ScheduleError, errors.SimulationError)
        assert issubclass(errors.NetworkError, errors.SimulationError)
        assert issubclass(errors.ChainError, errors.AnalysisError)
        assert issubclass(errors.SingularSystemError, errors.AlgebraError)

    def test_one_catch_all(self):
        try:
            raise errors.QuorumDenied("nope")
        except errors.ReproError as exc:
            assert "nope" in str(exc)


class TestPackageSurface:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.markov
        import repro.netsim
        import repro.quorums
        import repro.ratfunc
        import repro.reassignment
        import repro.sim

        for module in (
            repro.analysis,
            repro.markov,
            repro.netsim,
            repro.quorums,
            repro.ratfunc,
            repro.reassignment,
            repro.sim,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
