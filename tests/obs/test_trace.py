"""Structured trace tests: typed fields, JSONL export, drop accounting."""

from __future__ import annotations

import json

from repro.obs import TraceEvent, TraceLog


class TestTraceEvent:
    def test_typed_fields_survive_to_dict(self):
        event = TraceEvent.of(
            0.25, "message", "A -> B VoteReply(run 3)",
            source="A", destination="B", run_id=3,
        )
        assert event.to_dict() == {
            "time": 0.25,
            "category": "message",
            "description": "A -> B VoteReply(run 3)",
            "fields": {"source": "A", "destination": "B", "run_id": 3},
        }

    def test_field_lookup_with_default(self):
        event = TraceEvent.of(0.0, "run", "x", site="A")
        assert event.field("site") == "A"
        assert event.field("missing", 42) == 42

    def test_render_keeps_the_transcript_format(self):
        event = TraceEvent.of(0.03, "message", "A -> B VoteReply(run 1)")
        assert event.render() == "t=  0.0300 [message] A -> B VoteReply(run 1)"

    def test_to_json_round_trips_through_json_loads(self):
        event = TraceEvent.of(1.5, "lock", "queued", site="B", run_id=2)
        parsed = json.loads(event.to_json())
        assert parsed == event.to_dict()


class TestJsonlExport:
    def test_every_line_parses_as_json(self):
        log = TraceLog()
        log.record(0.0, "run", "run 1 submitted", run_id=1)
        log.record(0.1, "message", "A -> B VoteRequest(run 1)", run_id=1)
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["category"] == "run"
        assert parsed[1]["fields"]["run_id"] == 1

    def test_category_filter(self):
        log = TraceLog()
        log.record(0.0, "run", "a")
        log.record(0.1, "message", "b")
        log.record(0.2, "run", "c")
        docs = [json.loads(line) for line in log.iter_jsonl(("run",))]
        assert [d["description"] for d in docs] == ["a", "c"]


class TestDropAccounting:
    def test_drops_counted_in_total_and_per_category(self):
        log = TraceLog(capacity=2)
        log.record(0.0, "run", "kept 1")
        log.record(0.1, "message", "kept 2")
        log.record(0.2, "message", "dropped 1")
        log.record(0.3, "lock", "dropped 2")
        log.record(0.4, "message", "dropped 3")
        assert len(log) == 2
        assert log.dropped == 3
        assert log.dropped_by_category == {"message": 2, "lock": 1}

    def test_render_reports_truncation(self):
        log = TraceLog(capacity=1)
        log.record(0.0, "run", "kept")
        log.record(0.1, "message", "gone")
        log.record(0.2, "message", "gone too")
        rendered = log.render()
        assert rendered.endswith(
            "... (2 dropped at capacity; message: 2)"
        )

    def test_render_is_silent_when_nothing_dropped(self):
        log = TraceLog()
        log.record(0.0, "run", "kept")
        assert "dropped" not in log.render()

    def test_render_limit_and_drop_notice_compose(self):
        log = TraceLog(capacity=3)
        for i in range(5):
            log.record(float(i), "run", f"event {i}")
        lines = log.render(limit=2).splitlines()
        assert lines[-2] == "... (1 more)"
        assert lines[-1] == "... (2 dropped at capacity; run: 2)"
