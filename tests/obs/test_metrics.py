"""Unit tests for the metrics registry: instruments, scopes, disabled mode."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, NULL_REGISTRY, global_registry, use
from repro.obs.metrics import _NULL_COUNTER, _NULL_GAUGE, _NULL_HISTOGRAM


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter("a").value == 5

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert gauge.value is None
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_histogram_summary_is_exact(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.describe() == {
            "type": "histogram",
            "count": 3,
            "sum": 6.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
            "p50": 2.0,
            "p90": 3.0,
            "p99": 3.0,
        }

    def test_histogram_quantiles_are_nearest_rank(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):  # 1..100: pX is exactly X
            histogram.observe(float(value))
        assert histogram.quantile(50) == 50.0
        assert histogram.quantile(90) == 90.0
        assert histogram.quantile(99) == 99.0
        assert histogram.quantile(100) == 100.0
        # Nearest-rank on a tiny sample: rank = ceil(q/100 * N).
        small = MetricsRegistry().histogram("s")
        for value in (10.0, 20.0):
            small.observe(value)
        assert small.quantile(50) == 10.0
        assert small.quantile(51) == 20.0

    def test_histogram_quantile_rejects_bad_q_and_empty_is_none(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        for bad in (0, -1, 101):
            with pytest.raises(ObservabilityError, match="quantile"):
                histogram.quantile(bad)
        assert MetricsRegistry().histogram("e").quantile(50) is None

    def test_histogram_quantile_single_sample(self):
        # Nearest-rank with N = 1: rank = ceil(q/100) = 1 for every valid
        # q, so the lone sample answers all quantiles.
        histogram = MetricsRegistry().histogram("one")
        histogram.observe(42.0)
        for q in (1, 50, 99, 100):
            assert histogram.quantile(q) == 42.0

    def test_histogram_quantile_duplicate_heavy(self):
        # 97 copies of 1.0 plus 2.0, 3.0, 4.0: the duplicate plateau must
        # answer every quantile up to its own rank, and the tail values
        # appear exactly at ranks 98..100 (no off-by-one into the
        # plateau or past the maximum).
        histogram = MetricsRegistry().histogram("dup")
        for _ in range(97):
            histogram.observe(1.0)
        for value in (2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.quantile(1) == 1.0
        assert histogram.quantile(97) == 1.0
        assert histogram.quantile(98) == 2.0
        assert histogram.quantile(99) == 3.0
        assert histogram.quantile(100) == 4.0

    def test_histogram_quantile_matches_ceil_reference(self):
        # The implementation's -(-q * n // 100) must equal the textbook
        # nearest-rank ceil(q * n / 100) for every (q, n) pair in range.
        import math

        for n in (1, 2, 3, 7, 10, 99, 100, 101):
            histogram = MetricsRegistry().histogram(f"ref{n}")
            for value in range(n):
                histogram.observe(float(value))
            ordered = sorted(float(v) for v in range(n))
            for q in range(1, 101):
                rank = math.ceil(q * n / 100)
                assert histogram.quantile(q) == ordered[rank - 1], (q, n)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.histogram("x")


class TestScopes:
    def test_scope_prefixes_names(self):
        registry = MetricsRegistry()
        registry.scope("mc").counter("events").inc(7)
        assert registry.counter("mc.events").value == 7

    def test_nested_scope(self):
        registry = MetricsRegistry()
        registry.scope("a").scope("b").gauge("g").set(1)
        assert registry.names() == ("a.b.g",)


class TestDisabledFastPath:
    def test_disabled_registry_allocates_nothing(self):
        registry = MetricsRegistry(enabled=False)
        for i in range(10):
            registry.counter(f"c{i}").inc()
            registry.gauge(f"g{i}").set(i)
            registry.histogram(f"h{i}").observe(i)
        assert registry.names() == ()
        assert registry.snapshot() == {}
        assert registry.wall_clock_snapshot() == {}

    def test_disabled_instruments_are_shared_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is _NULL_COUNTER
        assert registry.counter("b") is _NULL_COUNTER
        assert registry.gauge("a") is _NULL_GAUGE
        assert registry.histogram("a") is _NULL_HISTOGRAM
        assert registry.scope("s").counter("a") is _NULL_COUNTER

    def test_null_updates_do_not_leak_state(self):
        NULL_REGISTRY.counter("a").inc(100)
        NULL_REGISTRY.gauge("g").set(9)
        NULL_REGISTRY.histogram("h").observe(1)
        assert _NULL_COUNTER.value == 0
        assert _NULL_GAUGE.value is None
        assert _NULL_HISTOGRAM.count == 0


class TestSnapshots:
    def test_snapshot_is_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        assert list(registry.snapshot()) == ["a", "z"]

    def test_wall_clock_gauges_excluded_from_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("events_per_sec", wall_clock=True).set(1e6)
        registry.counter("events").inc()
        assert list(registry.snapshot()) == ["events"]
        assert list(registry.wall_clock_snapshot()) == ["events_per_sec"]

    def test_render_aligns_and_handles_empty(self):
        registry = MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.counter("short").inc()
        registry.histogram("much.longer.name").observe(2)
        lines = registry.render().splitlines()
        assert len(lines) == 2
        assert "counter" in lines[1] and "short" in lines[1]
        assert "count=1" in lines[0]


class TestGlobalRegistry:
    def test_disabled_by_default(self):
        assert global_registry() is NULL_REGISTRY
        assert not global_registry().enabled

    def test_use_swaps_and_restores(self):
        registry = MetricsRegistry()
        with use(registry) as active:
            assert active is registry
            assert global_registry() is registry
        assert global_registry() is NULL_REGISTRY

    def test_use_restores_on_error(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use(registry):
                raise RuntimeError("boom")
        assert global_registry() is NULL_REGISTRY

    def test_use_none_is_a_no_op(self):
        with use(None) as active:
            assert active is NULL_REGISTRY

    def test_use_rejects_non_registries(self):
        with pytest.raises(ObservabilityError, match="MetricsRegistry"):
            with use({"not": "a registry"}):  # type: ignore[arg-type]
                pass
