"""Span forest tests: sim-time intervals with LIFO close enforcement."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, NULL_TRACKER, SpanTracker, TraceLog


class TestNesting:
    def test_spans_nest_and_close_lifo(self):
        tracker = SpanTracker()
        run = tracker.open("run", 0.0)
        vote = tracker.open("vote", 0.1, parent=run)
        assert vote.parent is run
        vote.close(0.5)
        run.close(1.0)
        assert vote.duration == pytest.approx(0.4)
        assert run.duration == pytest.approx(1.0)
        assert tracker.open_count == 0
        assert tracker.closed_count == 2

    def test_closing_parent_with_open_child_raises(self):
        tracker = SpanTracker()
        run = tracker.open("run", 0.0)
        tracker.open("vote", 0.1, parent=run)
        with pytest.raises(ObservabilityError, match="LIFO"):
            run.close(1.0)

    def test_double_close_raises(self):
        tracker = SpanTracker()
        span = tracker.open("run", 0.0)
        span.close(1.0)
        with pytest.raises(ObservabilityError, match="closed twice"):
            span.close(2.0)

    def test_close_before_open_time_raises(self):
        tracker = SpanTracker()
        span = tracker.open("run", 5.0)
        with pytest.raises(ObservabilityError, match="before it opened"):
            span.close(4.0)

    def test_opening_under_closed_parent_raises(self):
        tracker = SpanTracker()
        run = tracker.open("run", 0.0)
        run.close(1.0)
        with pytest.raises(ObservabilityError, match="already-closed parent"):
            tracker.open("vote", 1.5, parent=run)

    def test_close_if_open_is_idempotent(self):
        tracker = SpanTracker()
        span = tracker.open("run", 0.0)
        span.close_if_open(1.0)
        span.close_if_open(2.0)
        assert span.end == 1.0

    def test_concurrent_runs_form_independent_chains(self):
        # Two interleaved protocol runs: LIFO holds per parent chain, not
        # globally, so closing run A's child after run B opened is fine.
        tracker = SpanTracker()
        run_a = tracker.open("run", 0.0)
        vote_a = tracker.open("vote", 0.1, parent=run_a)
        run_b = tracker.open("run", 0.2)
        vote_b = tracker.open("vote", 0.3, parent=run_b)
        vote_a.close(0.4)
        run_a.close(0.5)
        vote_b.close(0.6)
        run_b.close(0.7)
        assert tracker.open_count == 0
        assert tracker.closed_count == 4


class TestSinks:
    def test_close_records_duration_histogram(self):
        registry = MetricsRegistry()
        tracker = SpanTracker(metrics=registry)
        tracker.open("vote", 1.0).close(3.0)
        entry = registry.snapshot()["span.vote"]
        assert entry["count"] == 1
        assert entry["sum"] == pytest.approx(2.0)

    def test_close_emits_structured_trace_event(self):
        log = TraceLog()
        tracker = SpanTracker(trace_log=log)
        span = tracker.open("vote", 1.0, run_id=7)
        span.close(3.0, votes=4)
        (event,) = log.category("span")
        assert event.time == 3.0
        assert event.field("name") == "vote"
        assert event.field("start") == 1.0
        assert event.field("end") == 3.0
        assert event.field("duration") == pytest.approx(2.0)
        assert event.field("run_id") == 7
        assert event.field("votes") == 4


class TestNullTracker:
    def test_null_tracker_hands_out_one_shared_inert_span(self):
        a = NULL_TRACKER.open("run", 0.0)
        b = NULL_TRACKER.open("vote", 1.0, parent=a)
        assert a is b
        a.close(2.0)
        a.close(3.0)  # double close is a no-op on the null span
        assert NULL_TRACKER.open_count == 0
        assert NULL_TRACKER.closed_count == 0
