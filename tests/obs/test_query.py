"""Trace-query engine tests: round-trip, happens-before, paths, catalog."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import TraceLog
from repro.obs.causal import CausalTracer
from repro.obs.query import (
    CausalDag,
    assertion_names,
    check_assertions,
    operation_stats,
)


def sample_log() -> TraceLog:
    """A hand-driven two-site commit: submit -> send -> deliver -> vote
    -> votes-closed -> commit -> finish, with a vote joining the chain."""
    log = TraceLog()
    t = CausalTracer(log, seed=1)
    root = t.begin("op:1", "submit", 0.0, site="A", run_id=1, op="update",
                   phase="submit")
    lock = t.emit("lock-granted", 0.0, parents=(root,), site="A", run_id=1,
                  phase="lock")
    send = t.emit("send", 0.0, parents=(lock,), site="A", run_id=1,
                  phase="vote")
    deliver = t.emit("deliver", 0.01, parents=(send,), site="B", run_id=1,
                     phase="vote")
    vote = t.emit("vote", 0.02, parents=(deliver,), site="A", run_id=1,
                  voter="B", phase="vote")
    closed = t.emit("votes-closed", 0.04, parents=(root, vote), site="A",
                    run_id=1, phase="vote")
    commit = t.emit("commit", 0.04, parents=(root, closed), site="A",
                    run_id=1, version=1, participants=["A", "B"],
                    phase="decision")
    t.emit("finish", 0.04, parents=(root, commit), site="A", run_id=1,
           status="committed", phase="decision")
    return log


class TestRoundTrip:
    def test_jsonl_export_parses_to_identical_dag(self):
        log = sample_log()
        from_memory = CausalDag.from_events(log.events)
        from_jsonl = CausalDag.from_jsonl(log.to_jsonl())
        assert from_memory.events == from_jsonl.events

    def test_non_causal_lines_are_skipped(self):
        log = sample_log()
        log.record(9.0, "message", "A -> B VoteRequest(run 1)")
        dag = CausalDag.from_jsonl(log.to_jsonl())
        assert all(e.kind != "VoteRequest" for e in dag.events)
        assert len(dag.events) == 8

    def test_bad_json_raises(self):
        with pytest.raises(ObservabilityError, match="not JSON"):
            CausalDag.from_jsonl('{"category": "causal"\nnope')

    def test_malformed_causal_event_raises(self):
        line = json.dumps(
            {"category": "causal", "time": 0.0, "fields": {"event_id": "x/0"}}
        )
        with pytest.raises(ObservabilityError, match="malformed"):
            CausalDag.from_jsonl(line)

    def test_duplicate_event_ids_raise(self):
        log = sample_log()
        text = log.to_jsonl()
        first = text.splitlines()[0]
        with pytest.raises(ObservabilityError, match="duplicate"):
            CausalDag.from_jsonl(text + "\n" + first)


class TestQueries:
    def test_happens_before_is_ancestor_reachability(self):
        dag = CausalDag.from_jsonl(sample_log().to_jsonl())
        (root,) = dag.roots()
        (commit,) = dag.find("commit")
        (vote,) = dag.find("vote")
        assert dag.happens_before(root.event_id, commit.event_id)
        assert dag.happens_before(vote.event_id, commit.event_id)
        assert not dag.happens_before(commit.event_id, vote.event_id)
        assert not dag.happens_before(commit.event_id, commit.event_id)

    def test_critical_path_segments_telescope_to_total(self):
        dag = CausalDag.from_jsonl(sample_log().to_jsonl())
        (finish,) = dag.find("finish")
        path = dag.critical_path(finish.event_id)
        assert path.events[0].kind == "submit"
        assert path.events[-1].kind == "finish"
        assert path.total == pytest.approx(0.04)
        assert sum(s.duration for s in path.segments) == pytest.approx(
            path.total, abs=1e-12
        )
        assert sum(path.by_phase().values()) == pytest.approx(
            path.total, abs=1e-12
        )

    def test_critical_path_takes_the_latest_parent(self):
        dag = CausalDag.from_jsonl(sample_log().to_jsonl())
        (closed,) = dag.find("votes-closed")
        path = dag.critical_path(closed.event_id)
        kinds = [e.kind for e in path.events]
        # The vote at t=0.02 gates votes-closed, not the t=0 root edge.
        assert kinds == [
            "submit", "lock-granted", "send", "deliver", "vote", "votes-closed"
        ]

    def test_operation_stats_fold_root_and_finish(self):
        dag = CausalDag.from_jsonl(sample_log().to_jsonl())
        (row,) = operation_stats(dag)
        assert row.run_id == 1
        assert row.kind == "update"
        assert row.status == "committed"
        assert row.latency == pytest.approx(0.04)


class TestAssertionCatalog:
    def test_clean_trace_passes_every_assertion(self):
        dag = CausalDag.from_jsonl(sample_log().to_jsonl())
        assert check_assertions(dag) == []

    def test_unknown_assertion_name_raises(self):
        dag = CausalDag([])
        with pytest.raises(ObservabilityError, match="unknown assertion"):
            check_assertions(dag, ["no-such-assertion"])

    def test_catalog_names_are_stable(self):
        assert assertion_names() == (
            "parents-resolve",
            "acyclic",
            "lamport-monotone",
            "time-monotone",
            "single-root",
            "commit-after-votes",
            "install-within-participants",
        )

    def _mutate(self, mutate) -> list:
        """Round-trip the sample trace with one JSON line rewritten."""
        lines = []
        for line in sample_log().to_jsonl().splitlines():
            record = json.loads(line)
            mutate(record)
            lines.append(json.dumps(record))
        return check_assertions(CausalDag.from_jsonl("\n".join(lines)))

    def test_dangling_parent_fails_parents_resolve(self):
        def mutate(record):
            if record["fields"]["event"] == "finish":
                record["fields"]["parents"] = ["missing/9"]

        failures = self._mutate(mutate)
        assert any(f.assertion == "parents-resolve" for f in failures)

    def test_lamport_regression_is_reported(self):
        def mutate(record):
            if record["fields"]["event"] == "commit":
                record["fields"]["lamport"] = 1

        failures = self._mutate(mutate)
        assert any(f.assertion == "lamport-monotone" for f in failures)

    def test_time_regression_is_reported(self):
        def mutate(record):
            if record["fields"]["event"] == "vote":
                record["time"] = -1.0

        failures = self._mutate(mutate)
        assert any(f.assertion == "time-monotone" for f in failures)

    def test_second_root_fails_single_root(self):
        def mutate(record):
            if record["fields"]["event"] == "lock-granted":
                record["fields"]["parents"] = []

        failures = self._mutate(mutate)
        assert any(f.assertion == "single-root" for f in failures)

    def test_commit_without_causal_vote_fails(self):
        # Cutting the vote edge out of votes-closed leaves the commit
        # with no causal path to B's vote: the quorum guarantee breaks.
        def mutate(record):
            fields = record["fields"]
            if fields["event"] == "votes-closed":
                fields["parents"] = [p for p in fields["parents"]
                                     if not p.endswith("/4")]

        failures = self._mutate(mutate)
        assert any(f.assertion == "commit-after-votes" for f in failures)

    def test_install_outside_participants_fails(self):
        log = sample_log()
        tracer = CausalTracer(log, seed=2)
        root = tracer.begin("op:9", "submit", 0.0, site="C", run_id=9)
        tracer.emit("install", 0.1, parents=(root,), site="C", run_id=9,
                    version=1, participants=["A", "B"], phase="decision")
        failures = check_assertions(CausalDag.from_jsonl(log.to_jsonl()))
        offending = [
            f for f in failures if f.assertion == "install-within-participants"
        ]
        assert len(offending) == 1
        assert "site C" in offending[0].detail
        assert offending[0].events  # the offending edge is named

    def test_cycle_is_detected(self):
        lines = []
        for line in sample_log().to_jsonl().splitlines():
            record = json.loads(line)
            fields = record["fields"]
            if fields["event"] == "submit":
                # Root now parents on its own descendant: a cycle.
                (commit,) = [
                    json.loads(other)["fields"]["event_id"]
                    for other in sample_log().to_jsonl().splitlines()
                    if json.loads(other)["fields"]["event"] == "commit"
                ]
                fields["parents"] = [commit]
            lines.append(json.dumps(record))
        failures = check_assertions(CausalDag.from_jsonl("\n".join(lines)))
        assert any(f.assertion == "acyclic" for f in failures)
