"""Run-manifest tests: schema validation and seeded-run determinism."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ManifestError
from repro.obs import (
    SCHEMA_VERSION,
    WALL_CLOCK_FIELDS,
    MetricsRegistry,
    RunManifest,
    strip_wall_clock,
    validate_manifest,
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("mc.events").inc(100)
    registry.gauge("mc.mean").set(0.42)
    registry.gauge("mc.events_per_sec", wall_clock=True).set(5e4)
    return registry


def _manifest() -> RunManifest:
    return RunManifest.collect(
        "simulate",
        seed=2026,
        protocol={"name": "hybrid", "n_sites": 5},
        params={"ratio": 1.0},
        registry=_registry(),
        wall_time_s=1.25,
    )


class TestSchema:
    def test_collect_produces_a_valid_manifest(self):
        data = _manifest().to_dict()
        validate_manifest(data)  # does not raise
        assert data["schema"] == SCHEMA_VERSION
        assert data["seed"] == 2026
        assert data["metrics"]["mc.events"] == {"type": "counter", "value": 100}
        assert "mc.events_per_sec" in data["wall_clock_metrics"]
        assert "mc.events_per_sec" not in data["metrics"]

    def test_to_json_round_trips(self):
        data = json.loads(_manifest().to_json())
        validate_manifest(data)

    def test_write_validates_and_writes(self, tmp_path):
        path = _manifest().write(tmp_path / "run.json")
        validate_manifest(json.loads(path.read_text()))

    @pytest.mark.parametrize(
        "mutation, message",
        [
            (lambda d: d.pop("seed"), "missing required field 'seed'"),
            (lambda d: d.update(schema="other/9"), "is not"),
            (lambda d: d.update(metrics={}), "at least one series"),
            (lambda d: d["protocol"].pop("name"), "must name the protocol"),
            (
                lambda d: d.update(metrics={"x": {"type": "sparkline"}}),
                "unknown type",
            ),
            (lambda d: d.update(seed="soon"), "integer or null"),
        ],
    )
    def test_validation_rejects_broken_manifests(self, mutation, message):
        data = _manifest().to_dict()
        mutation(data)
        with pytest.raises(ManifestError, match=message):
            validate_manifest(data)

    def test_strip_wall_clock_removes_exactly_the_documented_fields(self):
        data = _manifest().to_dict()
        stripped = strip_wall_clock(data)
        assert set(data) - set(stripped) == set(WALL_CLOCK_FIELDS)


class TestSeededDeterminism:
    def test_identical_seeds_identical_manifests_modulo_wall_clock(
        self, tmp_path, capsys
    ):
        argv = [
            "simulate", "--protocol", "hybrid", "-n", "5", "-r", "1.0",
            "--events", "500", "--replicates", "2", "--seed", "7",
        ]
        main([*argv, "--manifest", str(tmp_path / "a.json")])
        main([*argv, "--manifest", str(tmp_path / "b.json")])
        capsys.readouterr()
        a = json.loads((tmp_path / "a.json").read_text())
        b = json.loads((tmp_path / "b.json").read_text())
        assert strip_wall_clock(a) == strip_wall_clock(b)
        assert len(a["metrics"]) >= 10

    def test_different_seeds_differ(self, tmp_path, capsys):
        argv = [
            "simulate", "-n", "5", "--events", "500", "--replicates", "2",
        ]
        main([*argv, "--seed", "7", "--manifest", str(tmp_path / "a.json")])
        main([*argv, "--seed", "8", "--manifest", str(tmp_path / "b.json")])
        capsys.readouterr()
        a = json.loads((tmp_path / "a.json").read_text())
        b = json.loads((tmp_path / "b.json").read_text())
        assert strip_wall_clock(a) != strip_wall_clock(b)


class TestValidateManifestCommand:
    def test_valid_file_passes(self, tmp_path, capsys):
        path = _manifest().write(tmp_path / "run.json")
        assert main(["validate-manifest", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_file_fails(self, tmp_path, capsys):
        data = _manifest().to_dict()
        del data["seed"]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        assert main(["validate-manifest", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_unreadable_file_fails(self, tmp_path, capsys):
        assert main(["validate-manifest", str(tmp_path / "missing.json")]) == 1
        assert "INVALID" in capsys.readouterr().out
