"""Profiler tests: span folding invariants and collapsed-stack round-trip."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    SpanProfiler,
    SpanTracker,
    active_profiler,
    hotpath,
    parse_collapsed,
    profiling,
)
from repro.obs.profile import _NULL_TIMER


def _folded_forest() -> SpanProfiler:
    """A two-root forest with nesting, closed under a fresh profiler.

    run(0..10) > vote(1..7) > lock(2..3); commit(10..14) is a second
    root.  Durations: run 10 (excl 4), vote 6 (excl 5), lock 1,
    commit 4 -- total root time 14.
    """
    profiler = SpanProfiler()
    with profiling(profiler):
        tracker = SpanTracker()
        run = tracker.open("run", 0.0)
        vote = tracker.open("vote", 1.0, parent=run)
        lock = tracker.open("lock", 2.0, parent=vote)
        lock.close(3.0)
        vote.close(7.0)
        run.close(10.0)
        tracker.open("commit", 10.0).close(14.0)
    return profiler


class TestSpanFolding:
    def test_inclusive_is_total_duration_per_name(self):
        profiler = _folded_forest()
        assert profiler.inclusive() == pytest.approx(
            {"commit": 4.0, "lock": 1.0, "run": 10.0, "vote": 6.0}
        )
        assert profiler.counts() == {"commit": 1, "lock": 1, "run": 1, "vote": 1}

    def test_exclusive_subtracts_direct_children_only(self):
        profiler = _folded_forest()
        assert profiler.exclusive() == pytest.approx(
            {"commit": 4.0, "lock": 1.0, "run": 4.0, "vote": 5.0}
        )

    def test_exclusive_times_sum_to_root_total(self):
        profiler = _folded_forest()
        assert profiler.total() == pytest.approx(14.0)  # run 10 + commit 4
        assert sum(profiler.exclusive().values()) == pytest.approx(
            profiler.total()
        )

    def test_repeated_names_accumulate(self):
        profiler = SpanProfiler()
        with profiling(profiler):
            tracker = SpanTracker()
            for start in (0.0, 5.0):
                run = tracker.open("run", start)
                tracker.open("vote", start + 1.0, parent=run).close(start + 2.0)
                run.close(start + 3.0)
        assert profiler.counts() == {"run": 2, "vote": 2}
        assert profiler.inclusive() == pytest.approx({"run": 6.0, "vote": 2.0})
        assert profiler.exclusive() == pytest.approx({"run": 4.0, "vote": 2.0})

    def test_stacks_key_full_root_first_path(self):
        profiler = _folded_forest()
        assert profiler.stacks() == pytest.approx(
            {
                ("commit",): 4.0,
                ("run",): 4.0,
                ("run", "vote"): 5.0,
                ("run", "vote", "lock"): 1.0,
            }
        )

    def test_open_span_cannot_be_folded(self):
        profiler = SpanProfiler()
        span = SpanTracker().open("run", 0.0)
        with pytest.raises(ObservabilityError, match="open span"):
            profiler.record_span(span)


class TestCollapsedStack:
    def test_round_trips_through_parse(self):
        profiler = _folded_forest()
        parsed = parse_collapsed(profiler.collapsed_stack())
        assert parsed == pytest.approx(profiler.stacks())

    def test_lines_sum_to_root_total(self):
        profiler = _folded_forest()
        values = parse_collapsed(profiler.collapsed_stack()).values()
        assert sum(values) == pytest.approx(profiler.total())

    def test_parse_merges_duplicate_paths_and_skips_blanks(self):
        assert parse_collapsed("a;b 1.5\n\na;b 0.5\n") == {("a", "b"): 2.0}

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ObservabilityError, match="no value separator"):
            parse_collapsed("just-one-token")
        with pytest.raises(ObservabilityError, match="non-numeric"):
            parse_collapsed("a;b not-a-number")


class TestProfilingContext:
    def test_off_by_default_and_restored(self):
        assert active_profiler() is None
        with profiling() as profiler:
            assert active_profiler() is profiler
            with profiling() as inner:  # innermost wins
                assert active_profiler() is inner
            assert active_profiler() is profiler
        assert active_profiler() is None

    def test_rejects_non_profiler(self):
        with pytest.raises(ObservabilityError, match="SpanProfiler"):
            with profiling(object()):  # type: ignore[arg-type]
                pass

    def test_spans_outside_profiling_are_not_folded(self):
        tracker = SpanTracker()
        tracker.open("before", 0.0).close(1.0)
        with profiling() as profiler:
            tracker.open("inside", 1.0).close(2.0)
        tracker.open("after", 2.0).close(3.0)
        assert profiler.counts() == {"inside": 1}


class TestHotpath:
    def test_null_timer_when_off(self):
        assert hotpath("markov.solve.batched") is _NULL_TIMER

    def test_wall_attribution_accumulates(self):
        with profiling() as profiler:
            for _ in range(3):
                with hotpath("markov.solve.batched"):
                    pass
        table = profiler.wall_table()
        assert list(table) == ["markov.solve.batched"]
        assert table["markov.solve.batched"]["calls"] == 3
        assert table["markov.solve.batched"]["seconds"] >= 0.0

    def test_wall_paths_stay_out_of_sim_tables(self):
        with profiling() as profiler:
            with hotpath("mc.fanout.scalar"):
                pass
        assert profiler.inclusive() == {}
        assert profiler.total() == 0.0
        assert profiler.collapsed_stack() == ""
