"""Unit tests for the causal tracer: contexts, clocks, scoping, null mode."""

from __future__ import annotations

from repro.obs import TraceLog
from repro.obs.causal import (
    MESSAGE_PHASES,
    NULL_CAUSAL,
    TIMER_PHASES,
    CausalTracer,
    NullCausalTracer,
    derive_trace_id,
)
from repro.obs.causal import NULL_CONTEXT


def tracer(seed: int = 0) -> tuple[CausalTracer, TraceLog]:
    log = TraceLog()
    return CausalTracer(log, seed), log


class TestTraceIds:
    def test_derivation_is_deterministic(self):
        assert derive_trace_id(7, "trace:op:1") == derive_trace_id(7, "trace:op:1")

    def test_derivation_keys_on_seed_and_name(self):
        base = derive_trace_id(7, "trace:op:1")
        assert derive_trace_id(8, "trace:op:1") != base
        assert derive_trace_id(7, "trace:op:2") != base

    def test_trace_id_is_64_bit_hex(self):
        trace_id = derive_trace_id(0, "x")
        assert len(trace_id) == 16
        int(trace_id, 16)  # must parse as hex

    def test_two_tracers_same_seed_mint_identical_contexts(self):
        first, _ = tracer(seed=3)
        second, _ = tracer(seed=3)
        a = first.begin("op:1", "submit", 0.0, site="A")
        b = second.begin("op:1", "submit", 0.0, site="A")
        assert a == b


class TestEmission:
    def test_begin_roots_a_trace(self):
        t, log = tracer()
        ctx = t.begin("op:1", "submit", 0.0, site="A", run_id=1)
        assert ctx.event_id == f"{ctx.trace_id}/0"
        assert ctx.lamport == 1
        (event,) = log.events
        assert event.category == "causal"
        assert event.field("parents") == []
        assert event.field("run_id") == 1

    def test_event_ids_are_per_trace_counters(self):
        t, _ = tracer()
        root = t.begin("op:1", "submit", 0.0, site="A")
        child = t.emit("send", 0.0, parents=(root,), site="A")
        grandchild = t.emit("deliver", 0.01, parents=(child,), site="B")
        assert child.event_id == f"{root.trace_id}/1"
        assert grandchild.event_id == f"{root.trace_id}/2"

    def test_lamport_advances_past_all_parents(self):
        t, _ = tracer()
        root = t.begin("op:1", "submit", 0.0, site="A")
        fast = t.emit("send", 0.0, parents=(root,), site="A")  # A clock: 2
        slow = t.emit("deliver", 0.01, parents=(fast,), site="B")  # B: 3
        join = t.emit("votes-closed", 0.02, parents=(root, slow), site="A")
        assert join.lamport == max(root.lamport, slow.lamport) + 1

    def test_none_and_duplicate_parents_are_dropped(self):
        t, log = tracer()
        root = t.begin("op:1", "submit", 0.0, site="A")
        child = t.emit("send", 0.0, parents=(None, root, root, None), site="A")
        assert child.trace_id == root.trace_id
        assert log.events[-1].field("parents") == [root.event_id]

    def test_parentless_emit_opens_an_orphan_trace(self):
        t, log = tracer(seed=5)
        first = t.emit("stray", 0.0, site="A")
        second = t.emit("stray", 0.0, site="A")
        assert first.trace_id != second.trace_id
        assert first.trace_id == derive_trace_id(5, "trace:orphan:1")
        assert log.events[0].field("parents") == []

    def test_first_parent_wins_the_trace_id(self):
        t, _ = tracer()
        a = t.begin("op:1", "submit", 0.0, site="A")
        b = t.begin("op:2", "submit", 0.0, site="B")
        joined = t.emit("deliver", 0.01, parents=(b, a), site="C")
        assert joined.trace_id == b.trace_id

    def test_message_and_timer_phase_maps_cover_the_protocol(self):
        assert MESSAGE_PHASES["VoteRequest"] == "vote"
        assert MESSAGE_PHASES["CatchUpReply"] == "catch-up"
        assert TIMER_PHASES["vote-window"] == "vote"
        assert TIMER_PHASES["catch-up-window"] == "catch-up"


class TestScoping:
    def test_scope_installs_and_restores_current(self):
        t, _ = tracer()
        ctx = t.begin("op:1", "submit", 0.0, site="A")
        assert t.current is None
        with t.scope(ctx):
            assert t.current is ctx
            inner = t.emit("send", 0.0, parents=(t.current,), site="A")
            with t.scope(inner):
                assert t.current is inner
            assert t.current is ctx
        assert t.current is None

    def test_scoped_wraps_a_thunk(self):
        t, _ = tracer()
        ctx = t.begin("op:1", "submit", 0.0, site="A")
        seen = []
        t.scoped(lambda: seen.append(t.current), ctx)()
        assert seen == [ctx]
        assert t.current is None


class TestNullTracer:
    def test_null_is_disabled_and_shared(self):
        assert NULL_CAUSAL.enabled is False
        assert isinstance(NULL_CAUSAL, NullCausalTracer)

    def test_null_emits_nothing_and_returns_null_context(self):
        assert NULL_CAUSAL.begin("op:1", "submit", 0.0, site="A") is NULL_CONTEXT
        assert NULL_CAUSAL.emit("send", 0.0, site="A") is NULL_CONTEXT

    def test_null_scope_is_a_no_op(self):
        with NULL_CAUSAL.scope(None) as ctx:
            assert ctx is None

    def test_null_scoped_returns_the_thunk_unchanged(self):
        def thunk() -> None:
            pass

        assert NULL_CAUSAL.scoped(thunk, None) is thunk

    def test_enabled_tracer_drops_null_context_parents(self):
        t, log = tracer()
        ctx = t.emit("stray", 0.0, parents=(NULL_CONTEXT,), site="A")
        assert log.events[0].field("parents") == []
        assert ctx.trace_id == derive_trace_id(0, "trace:orphan:1")
