"""Unit tests for the deterministic task executors (docs/PERFORMANCE.md)."""

import pytest

from repro.errors import PerfError
from repro.perf import (
    ENV_WORKERS,
    ProcessExecutor,
    SerialExecutor,
    available_cpus,
    make_executor,
    resolve_workers,
)


def _square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_explicit_count_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "7")
        assert resolve_workers(3) == 3

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "4")
        assert resolve_workers() == 4

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(0) == available_cpus()

    def test_env_auto_means_all_cpus(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "auto")
        assert resolve_workers() == available_cpus()

    def test_env_blank_is_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "   ")
        assert resolve_workers() == 1

    def test_negative_rejected(self):
        with pytest.raises(PerfError):
            resolve_workers(-1)

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "many")
        with pytest.raises(PerfError):
            resolve_workers()

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


class TestExecutors:
    def test_serial_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_process_map_matches_serial(self):
        tasks = list(range(17))
        serial = SerialExecutor().map(_square, tasks)
        parallel = ProcessExecutor(2).map(_square, tasks)
        assert parallel == serial

    def test_process_executor_rejects_single_worker(self):
        with pytest.raises(PerfError):
            ProcessExecutor(1)

    def test_process_map_single_task_runs_inline(self):
        # A one-item map must not pay for a pool.
        assert ProcessExecutor(4).map(_square, [5]) == [25]

    def test_make_executor_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert isinstance(make_executor(), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)

    def test_make_executor_parallel(self):
        executor = make_executor(3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 3

    def test_make_executor_reads_env(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "2")
        assert isinstance(make_executor(), ProcessExecutor)
