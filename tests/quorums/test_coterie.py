"""Unit tests for the coterie algebra."""

import pytest

from repro.errors import ProtocolError
from repro.quorums import (
    Coterie,
    coterie_from_votes,
    majority_coterie,
    primary_copy_coterie,
    tree_coterie,
)
from repro.types import site_names


class TestConstruction:
    def test_valid_coterie(self):
        coterie = Coterie("ABC", [{"A", "B"}, {"B", "C"}, {"A", "C"}])
        assert len(coterie.groups) == 3

    def test_empty_group_rejected(self):
        with pytest.raises(ProtocolError):
            Coterie("ABC", [set()])

    def test_no_groups_rejected(self):
        with pytest.raises(ProtocolError):
            Coterie("ABC", [])

    def test_disjoint_groups_rejected(self):
        with pytest.raises(ProtocolError, match="do not intersect"):
            Coterie("ABCD", [{"A", "B"}, {"C", "D"}])

    def test_non_minimal_rejected(self):
        with pytest.raises(ProtocolError, match="minimal"):
            Coterie("ABC", [{"A"}, {"A", "B"}])

    def test_unknown_sites_rejected(self):
        with pytest.raises(ProtocolError):
            Coterie("AB", [{"A", "Z"}])

    def test_duplicate_groups_collapse(self):
        coterie = Coterie("ABC", [{"A", "B"}, {"B", "A"}])
        assert len(coterie.groups) == 1


class TestQuorumChecks:
    def test_is_quorum(self):
        coterie = majority_coterie(site_names(5))
        assert coterie.is_quorum({"A", "B", "C"})
        assert coterie.is_quorum({"A", "B", "C", "D"})
        assert not coterie.is_quorum({"A", "B"})

    def test_any_two_quorums_intersect_exhaustively(self):
        coterie = majority_coterie(site_names(5))
        for g1 in coterie.groups:
            for g2 in coterie.groups:
                assert g1 & g2

    def test_blocking_sets_of_majority(self):
        coterie = majority_coterie(site_names(3))
        # Killing any 2 of 3 sites blocks every majority.
        blockers = coterie.blocking_sets()
        assert all(len(b) == 2 for b in blockers)
        assert len(blockers) == 3

    def test_blocking_sets_of_primary(self):
        coterie = primary_copy_coterie(site_names(3), "B")
        assert coterie.blocking_sets() == (frozenset({"B"}),)


class TestDomination:
    def test_majority_not_dominated_odd_n(self):
        assert not majority_coterie(site_names(3)).is_dominated()
        assert not majority_coterie(site_names(5)).is_dominated()

    def test_majority_dominated_even_n(self):
        # For even n, pure majorities are dominated (a tie-breaking rule
        # such as the primary-site scheme strictly improves them).
        assert majority_coterie(site_names(4)).is_dominated()

    def test_primary_copy_not_dominated(self):
        assert not primary_copy_coterie(site_names(4), "A").is_dominated()

    def test_dominates_relation(self):
        # {A} dominates the 2-of-3 majority restricted... build an example:
        weaker = Coterie("ABC", [{"A", "B"}, {"A", "C"}])
        stronger = Coterie("ABC", [{"A"}])
        assert stronger.dominates(weaker)
        assert not weaker.dominates(stronger)

    def test_dominates_requires_common_universe(self):
        with pytest.raises(ProtocolError):
            majority_coterie("ABC").dominates(majority_coterie("ABCD"))

    def test_coterie_does_not_dominate_itself(self):
        coterie = majority_coterie(site_names(3))
        assert not coterie.dominates(coterie)


class TestConstructors:
    def test_majority_groups_have_quorum_size(self):
        coterie = majority_coterie(site_names(5))
        assert all(len(g) == 3 for g in coterie.groups)
        assert len(coterie.groups) == 10  # C(5,3)

    def test_coterie_from_uniform_votes_equals_majority(self):
        sites = site_names(5)
        votes = dict.fromkeys(sites, 1)
        assert coterie_from_votes(sites, votes) == majority_coterie(sites)

    def test_coterie_from_weighted_votes(self):
        coterie = coterie_from_votes("ABC", {"A": 2, "B": 1, "C": 1})
        # majority of 4 votes is > 2: {A,B}, {A,C}, {B,C}... B+C = 2 not > 2.
        assert frozenset("AB") in coterie.groups
        assert frozenset("AC") in coterie.groups
        assert frozenset("BC") not in coterie.groups

    def test_dictator_vote_assignment(self):
        coterie = coterie_from_votes("ABC", {"A": 3, "B": 1, "C": 1})
        assert coterie.groups == (frozenset("A"),)

    def test_tree_coterie_seven_sites(self):
        coterie = tree_coterie(site_names(7))
        # Root-to-leaf paths have size 3; root failure doubles up.
        assert coterie.is_quorum({"A", "B", "D"})  # root, left, leaf
        assert coterie.is_quorum({"B", "D", "C", "F"})  # two child paths
        assert not coterie.is_quorum({"D", "E"})

    def test_tree_coterie_needs_full_tree(self):
        with pytest.raises(ProtocolError):
            tree_coterie(site_names(5))

    def test_tree_coterie_single_site(self):
        coterie = tree_coterie(site_names(1))
        assert coterie.groups == (frozenset("A"),)
