"""Unit tests for vote assignments and their exact availability."""

import math

import pytest

from repro.errors import ProtocolError
from repro.quorums import (
    VoteAssignment,
    majority_availability,
    uniform_up_probability,
)
from repro.types import site_names


class TestUpProbability:
    def test_formula(self):
        assert uniform_up_probability(1.0) == 0.5
        assert uniform_up_probability(3.0) == 0.75
        assert uniform_up_probability(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            uniform_up_probability(-0.1)


class TestVoteAssignment:
    def test_uniform_quorum(self):
        assignment = VoteAssignment.uniform(site_names(5))
        assert assignment.has_quorum(frozenset("ABC"))
        assert not assignment.has_quorum(frozenset("AB"))

    def test_weighted_quorum(self):
        assignment = VoteAssignment.weighted(
            site_names(3), {"A": 2, "B": 1, "C": 1}
        )
        assert assignment.total == 4
        assert assignment.has_quorum(frozenset("AB"))
        assert not assignment.has_quorum(frozenset("BC"))

    def test_availability_matches_closed_form(self):
        assignment = VoteAssignment.uniform(site_names(5))
        for p in (0.2, 0.5, 0.8):
            enumerated = assignment.availability(p)
            closed = majority_availability(5, p, measure="traditional")
            assert enumerated == pytest.approx(closed, abs=1e-12)

    def test_site_availability_matches_closed_form(self):
        assignment = VoteAssignment.uniform(site_names(4))
        for p in (0.3, 0.6, 0.9):
            enumerated = assignment.site_availability(p)
            closed = majority_availability(4, p, measure="site")
            assert enumerated == pytest.approx(closed, abs=1e-12)

    def test_heterogeneous_probabilities(self):
        assignment = VoteAssignment.weighted(site_names(2), {"A": 2, "B": 1})
        # A is a dictator: availability = P(A up).
        table = {"A": 0.7, "B": 0.4}
        assert assignment.availability(table) == pytest.approx(0.7)

    def test_dictator_site_measure(self):
        assignment = VoteAssignment.weighted(site_names(2), {"A": 2, "B": 1})
        table = {"A": 0.7, "B": 0.4}
        # update must land on an up site in A's partition: A always, B only
        # when up alongside A: (0.7*0.6*1 + 0.7*0.4*2)/2.
        expected = 0.7 * 0.6 * (1 / 2) + 0.7 * 0.4 * (2 / 2)
        assert assignment.site_availability(table) == pytest.approx(expected)

    def test_probability_out_of_range_rejected(self):
        assignment = VoteAssignment.uniform(site_names(2))
        with pytest.raises(ProtocolError):
            assignment.availability(1.5)

    def test_coterie_roundtrip(self):
        assignment = VoteAssignment.uniform(site_names(3))
        coterie = assignment.coterie()
        assert all(len(g) == 2 for g in coterie.groups)


class TestMajorityAvailabilityClosedForm:
    def test_single_site(self):
        assert majority_availability(1, 0.8, measure="site") == pytest.approx(0.8)
        assert majority_availability(1, 0.8, measure="traditional") == pytest.approx(0.8)

    def test_three_sites_traditional(self):
        p = 0.5
        expected = sum(
            math.comb(3, k) * p**k * (1 - p) ** (3 - k) for k in (2, 3)
        )
        assert majority_availability(3, p, measure="traditional") == pytest.approx(
            expected
        )

    def test_site_measure_below_traditional(self):
        # The k/n factor can only shrink terms.
        for n in (3, 4, 5):
            for p in (0.3, 0.7):
                assert majority_availability(n, p, "site") <= majority_availability(
                    n, p, "traditional"
                )

    def test_monotone_in_p(self):
        values = [majority_availability(5, p) for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_invalid_measure_rejected(self):
        with pytest.raises(ProtocolError):
            majority_availability(3, 0.5, measure="bogus")

    def test_zero_sites_rejected(self):
        with pytest.raises(ProtocolError):
            majority_availability(0, 0.5)


class TestSymbolicAvailability:
    def test_uniform_matches_chain_symbolic(self):
        from repro.markov import availability_symbolic
        from repro.quorums import VoteAssignment
        from repro.types import site_names

        for n in (3, 4, 5):
            assignment = VoteAssignment.uniform(site_names(n))
            assert assignment.availability_symbolic() == availability_symbolic(
                "voting", n
            )

    def test_dictator_traditional_is_up_probability(self):
        from fractions import Fraction

        from repro.quorums import VoteAssignment
        from repro.types import site_names

        assignment = VoteAssignment.weighted(site_names(2), {"A": 3, "B": 1})
        f = assignment.availability_symbolic("traditional")
        assert f(Fraction(4)) == Fraction(4, 5)  # P(A up) = r/(1+r)

    def test_symbolic_evaluates_to_numeric(self):
        from fractions import Fraction

        from repro.quorums import VoteAssignment
        from repro.types import site_names

        assignment = VoteAssignment.weighted(
            site_names(3), {"A": 2, "B": 1, "C": 1}
        )
        f = assignment.availability_symbolic()
        for ratio in (Fraction(1, 2), Fraction(3)):
            p = float(ratio / (1 + ratio))
            assert float(f(ratio)) == pytest.approx(
                assignment.site_availability(p), abs=1e-12
            )

    def test_bad_measure_rejected(self):
        from repro.errors import ProtocolError
        from repro.quorums import VoteAssignment
        from repro.types import site_names

        with pytest.raises(ProtocolError):
            VoteAssignment.uniform(site_names(2)).availability_symbolic("x")


class TestDpEvaluator:
    """The polynomial DP evaluator against subset enumeration."""

    def test_site_measure_matches_enumeration(self):
        sites = site_names(7)
        probabilities = {s: 0.5 + 0.06 * i for i, s in enumerate(sites)}
        assignment = VoteAssignment.weighted(
            sites, {s: (i % 3) + 1 for i, s in enumerate(sites)}
        )
        assert assignment.site_availability(
            probabilities, method="dp"
        ) == pytest.approx(
            assignment.site_availability(probabilities, method="enumerate"),
            abs=1e-12,
        )

    def test_traditional_measure_matches_enumeration(self):
        sites = site_names(7)
        probabilities = {s: 0.5 + 0.06 * i for i, s in enumerate(sites)}
        assignment = VoteAssignment.weighted(
            sites, {s: (i % 3) + 1 for i, s in enumerate(sites)}
        )
        assert assignment.availability(
            probabilities, method="dp"
        ) == pytest.approx(
            assignment.availability(probabilities, method="enumerate"),
            abs=1e-12,
        )

    def test_auto_routes_large_n_to_dp(self):
        # 2^25 subsets is not enumerable; only the DP path can answer,
        # and at uniform votes it must equal the binomial closed form.
        from repro.quorums import majority_availability

        sites = site_names(25)
        probabilities = dict.fromkeys(sites, 0.8)
        value = VoteAssignment.uniform(sites).site_availability(probabilities)
        assert value == pytest.approx(
            majority_availability(25, 0.8, measure="site"), abs=1e-12
        )

    def test_uniform_dp_matches_closed_form(self):
        from repro.quorums import majority_availability

        sites = site_names(9)
        value = VoteAssignment.uniform(sites).availability(
            dict.fromkeys(sites, 0.7), method="dp"
        )
        assert value == pytest.approx(
            majority_availability(9, 0.7, measure="traditional"), abs=1e-12
        )

    def test_unknown_method_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            VoteAssignment.uniform(site_names(3)).availability(0.8, method="x")
