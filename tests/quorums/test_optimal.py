"""Unit tests for the optimal static vote assignment search."""

import pytest

from repro.errors import ProtocolError
from repro.quorums import (
    VoteAssignment,
    local_search_vote_assignment,
    optimal_vote_assignment,
)
from repro.quorums.optimal import _search_seeds
from repro.types import site_names


class TestSearch:
    def test_uniform_sites_get_a_majority_structure(self):
        result = optimal_vote_assignment(
            site_names(3), dict.fromkeys(site_names(3), 0.8), max_votes_per_site=2
        )
        # With identical sites, some symmetric majority scheme wins; its
        # availability must equal simple majority voting's.
        uniform = VoteAssignment.uniform(site_names(3)).site_availability(0.8)
        assert result.availability >= uniform - 1e-12

    def test_reliable_site_becomes_dictator(self):
        result = optimal_vote_assignment(
            site_names(3), {"A": 0.99, "B": 0.5, "C": 0.5}, max_votes_per_site=2
        )
        assert result.votes["A"] >= result.votes["B"] + result.votes["C"]

    def test_beats_or_matches_every_candidate(self):
        import itertools

        probabilities = {"A": 0.9, "B": 0.7, "C": 0.55}
        result = optimal_vote_assignment(
            site_names(3), probabilities, max_votes_per_site=2
        )
        for votes in itertools.product(range(3), repeat=3):
            if not any(votes):
                continue
            candidate = VoteAssignment.weighted(
                site_names(3), dict(zip(site_names(3), votes))
            )
            assert result.availability >= candidate.site_availability(
                probabilities
            ) - 1e-12

    def test_traditional_measure_supported(self):
        result = optimal_vote_assignment(
            site_names(3),
            {"A": 0.9, "B": 0.7, "C": 0.55},
            max_votes_per_site=2,
            measure="traditional",
        )
        assert result.measure == "traditional"
        assert 0 < result.availability <= 1

    def test_deterministic_tie_breaking(self):
        probabilities = dict.fromkeys(site_names(3), 0.5)
        first = optimal_vote_assignment(site_names(3), probabilities)
        second = optimal_vote_assignment(site_names(3), probabilities)
        assert first.votes == second.votes

    def test_invalid_measure_rejected(self):
        with pytest.raises(ProtocolError):
            optimal_vote_assignment(site_names(2), {"A": 0.5, "B": 0.5}, measure="x")

    def test_zero_budget_rejected(self):
        with pytest.raises(ProtocolError):
            optimal_vote_assignment(
                site_names(2), {"A": 0.5, "B": 0.5}, max_votes_per_site=0
            )

    def test_oversized_search_rejected(self):
        with pytest.raises(ProtocolError):
            optimal_vote_assignment(
                site_names(15), dict.fromkeys(site_names(15), 0.5),
                max_votes_per_site=3,
            )

    def test_evaluated_count(self):
        result = optimal_vote_assignment(
            site_names(2), {"A": 0.8, "B": 0.8}, max_votes_per_site=1
        )
        assert result.evaluated == 3  # (0,1), (1,0), (1,1)


class TestLocalSearch:
    """Multi-start steepest ascent pinned to the exhaustive optimum."""

    # Six heterogeneous n=5 instances covering the optimum families the
    # seeds target (near-uniform, dictator, majority-of-the-reliable,
    # tiered) plus adversarial mixes that defeated single-start ascent.
    PANEL = [
        {"A": 0.70, "B": 0.70, "C": 0.70, "D": 0.99, "E": 0.51},
        {"A": 0.51, "B": 0.52, "C": 0.90, "D": 0.91, "E": 0.92},
        {"A": 0.60, "B": 0.65, "C": 0.70, "D": 0.75, "E": 0.80},
        {"A": 0.95, "B": 0.55, "C": 0.55, "D": 0.55, "E": 0.55},
        {"A": 0.80, "B": 0.80, "C": 0.80, "D": 0.80, "E": 0.80},
        {"A": 0.50, "B": 0.60, "C": 0.98, "D": 0.97, "E": 0.55},
    ]

    @pytest.mark.parametrize("probabilities", PANEL)
    @pytest.mark.parametrize("measure", ["site", "traditional"])
    def test_matches_exhaustive_on_panel(self, probabilities, measure):
        sites = site_names(5)
        exhaustive = optimal_vote_assignment(
            sites, probabilities, max_votes_per_site=3, measure=measure
        )
        searched = local_search_vote_assignment(
            sites, probabilities, max_votes_per_site=3, measure=measure
        )
        assert searched.availability == pytest.approx(
            exhaustive.availability, abs=1e-12
        )
        assert searched.evaluated < exhaustive.evaluated

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_matches_exhaustive_on_ladders(self, n):
        sites = site_names(n)
        probabilities = {
            site: 0.55 + 0.4 * i / (n - 1) for i, site in enumerate(sites)
        }
        exhaustive = optimal_vote_assignment(
            sites, probabilities, max_votes_per_site=2
        )
        searched = local_search_vote_assignment(
            sites, probabilities, max_votes_per_site=2
        )
        assert searched.availability == pytest.approx(
            exhaustive.availability, abs=1e-12
        )

    def test_deterministic(self):
        sites = site_names(6)
        probabilities = {s: 0.6 + 0.05 * i for i, s in enumerate(sites)}
        first = local_search_vote_assignment(sites, probabilities)
        second = local_search_vote_assignment(sites, probabilities)
        assert first.votes == second.votes
        assert first.availability == second.availability

    def test_beats_every_seed(self):
        sites = site_names(5)
        probabilities = {"A": 0.6, "B": 0.7, "C": 0.8, "D": 0.9, "E": 0.95}
        result = local_search_vote_assignment(sites, probabilities)
        for seed in _search_seeds(sites, probabilities, 3):
            candidate = VoteAssignment.weighted(sites, seed)
            assert result.availability >= candidate.site_availability(
                probabilities, method="dp"
            ) - 1e-12

    def test_invalid_measure_rejected(self):
        with pytest.raises(ProtocolError):
            local_search_vote_assignment(
                site_names(2), {"A": 0.5, "B": 0.5}, measure="x"
            )

    def test_zero_budget_rejected(self):
        with pytest.raises(ProtocolError):
            local_search_vote_assignment(
                site_names(2), {"A": 0.5, "B": 0.5}, max_votes_per_site=0
            )

    def test_zero_moves_rejected(self):
        with pytest.raises(ProtocolError):
            local_search_vote_assignment(
                site_names(2), {"A": 0.5, "B": 0.5}, max_moves=0
            )
