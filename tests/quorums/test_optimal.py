"""Unit tests for the optimal static vote assignment search."""

import pytest

from repro.errors import ProtocolError
from repro.quorums import (
    VoteAssignment,
    optimal_vote_assignment,
)
from repro.types import site_names


class TestSearch:
    def test_uniform_sites_get_a_majority_structure(self):
        result = optimal_vote_assignment(
            site_names(3), dict.fromkeys(site_names(3), 0.8), max_votes_per_site=2
        )
        # With identical sites, some symmetric majority scheme wins; its
        # availability must equal simple majority voting's.
        uniform = VoteAssignment.uniform(site_names(3)).site_availability(0.8)
        assert result.availability >= uniform - 1e-12

    def test_reliable_site_becomes_dictator(self):
        result = optimal_vote_assignment(
            site_names(3), {"A": 0.99, "B": 0.5, "C": 0.5}, max_votes_per_site=2
        )
        assert result.votes["A"] >= result.votes["B"] + result.votes["C"]

    def test_beats_or_matches_every_candidate(self):
        import itertools

        probabilities = {"A": 0.9, "B": 0.7, "C": 0.55}
        result = optimal_vote_assignment(
            site_names(3), probabilities, max_votes_per_site=2
        )
        for votes in itertools.product(range(3), repeat=3):
            if not any(votes):
                continue
            candidate = VoteAssignment.weighted(
                site_names(3), dict(zip(site_names(3), votes))
            )
            assert result.availability >= candidate.site_availability(
                probabilities
            ) - 1e-12

    def test_traditional_measure_supported(self):
        result = optimal_vote_assignment(
            site_names(3),
            {"A": 0.9, "B": 0.7, "C": 0.55},
            max_votes_per_site=2,
            measure="traditional",
        )
        assert result.measure == "traditional"
        assert 0 < result.availability <= 1

    def test_deterministic_tie_breaking(self):
        probabilities = dict.fromkeys(site_names(3), 0.5)
        first = optimal_vote_assignment(site_names(3), probabilities)
        second = optimal_vote_assignment(site_names(3), probabilities)
        assert first.votes == second.votes

    def test_invalid_measure_rejected(self):
        with pytest.raises(ProtocolError):
            optimal_vote_assignment(site_names(2), {"A": 0.5, "B": 0.5}, measure="x")

    def test_zero_budget_rejected(self):
        with pytest.raises(ProtocolError):
            optimal_vote_assignment(
                site_names(2), {"A": 0.5, "B": 0.5}, max_votes_per_site=0
            )

    def test_oversized_search_rejected(self):
        with pytest.raises(ProtocolError):
            optimal_vote_assignment(
                site_names(15), dict.fromkeys(site_names(15), 0.5),
                max_votes_per_site=3,
            )

    def test_evaluated_count(self):
        result = optimal_vote_assignment(
            site_names(2), {"A": 0.8, "B": 0.8}, max_votes_per_site=1
        )
        assert result.evaluated == 3  # (0,1), (1,0), (1,1)
