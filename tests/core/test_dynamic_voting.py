"""Unit tests for dynamic voting (the SIGMOD'87 protocol)."""

import pytest

from repro.core import DynamicVotingProtocol, ReplicaMetadata, Rule
from repro.errors import ProtocolError
from repro.types import site_names

from ..conftest import fresh_copies


def committed(protocol, copies, partition):
    """Attempt an update and install the result; returns the outcome."""
    outcome = protocol.attempt_update(partition, copies)
    if outcome.accepted:
        for site in partition:
            copies[site] = outcome.metadata
    return outcome


class TestQuorumRule:
    def test_initial_majority(self, dynamic5):
        copies = fresh_copies(dynamic5)
        decision = dynamic5.is_distinguished({"A", "B", "C"}, copies)
        assert decision.granted
        assert decision.rule is Rule.DYNAMIC_MAJORITY
        assert decision.cardinality == 5

    def test_initial_minority_denied(self, dynamic5):
        copies = fresh_copies(dynamic5)
        assert not dynamic5.is_distinguished({"D", "E"}, copies).granted

    def test_cardinality_shrinks_with_the_partition(self, dynamic5):
        copies = fresh_copies(dynamic5)
        committed(dynamic5, copies, {"A", "B", "C"})
        assert copies["A"].cardinality == 3
        # Two of the three current copies are now a quorum...
        decision = dynamic5.is_distinguished({"A", "B"}, copies)
        assert decision.granted
        # ...even though two of five would never satisfy static voting.

    def test_exact_half_denied(self, dynamic5):
        copies = fresh_copies(dynamic5)
        committed(dynamic5, copies, {"A", "B", "C", "D"})
        assert not dynamic5.is_distinguished({"A", "B"}, copies).granted

    def test_stale_sites_count_in_p_but_not_in_i(self, dynamic5):
        copies = fresh_copies(dynamic5)
        committed(dynamic5, copies, {"A", "B", "C"})
        # Partition {A, D, E}: only A holds the current version; one of
        # three current copies is not a majority.
        decision = dynamic5.is_distinguished({"A", "D", "E"}, copies)
        assert not decision.granted
        assert decision.current == frozenset("A")
        assert decision.cardinality == 3

    def test_majority_of_current_with_stale_members(self, dynamic5):
        copies = fresh_copies(dynamic5)
        committed(dynamic5, copies, {"A", "B", "C"})
        # {A, B, D}: two of the three current copies plus a stale member.
        decision = dynamic5.is_distinguished({"A", "B", "D"}, copies)
        assert decision.granted

    def test_cardinality_grows_on_reunion(self, dynamic5):
        copies = fresh_copies(dynamic5)
        committed(dynamic5, copies, {"A", "B", "C"})
        outcome = committed(dynamic5, copies, {"A", "B", "C", "D", "E"})
        assert outcome.accepted
        assert outcome.metadata.cardinality == 5
        assert outcome.stale_members == frozenset("DE")

    def test_remaining_minority_cannot_update_after_shrink(self, dynamic5):
        # The Theorem 1 argument: after {A,B,C} commit from version v,
        # the leftover version-v sites {D,E} can never assemble a quorum.
        copies = fresh_copies(dynamic5)
        committed(dynamic5, copies, {"A", "B", "C"})
        assert not dynamic5.is_distinguished({"D", "E"}, copies).granted

    def test_version_increments_by_one(self, dynamic5):
        copies = fresh_copies(dynamic5)
        first = committed(dynamic5, copies, {"A", "B", "C"})
        second = committed(dynamic5, copies, {"A", "B"})
        assert (first.metadata.version, second.metadata.version) == (1, 2)

    def test_ds_entry_unused(self, dynamic5):
        copies = fresh_copies(dynamic5)
        outcome = committed(dynamic5, copies, {"A", "B", "C", "D"})
        assert outcome.metadata.distinguished == ()


class TestValidation:
    def test_empty_partition_rejected(self, dynamic5):
        with pytest.raises(ProtocolError):
            dynamic5.is_distinguished(set(), fresh_copies(dynamic5))

    def test_unknown_site_rejected(self, dynamic5):
        with pytest.raises(ProtocolError):
            dynamic5.is_distinguished({"Z"}, fresh_copies(dynamic5))

    def test_missing_metadata_rejected(self, dynamic5):
        with pytest.raises(ProtocolError):
            dynamic5.is_distinguished({"A", "B", "C"}, {"A": ReplicaMetadata(0, 5)})

    def test_duplicate_sites_rejected_at_construction(self):
        with pytest.raises(ValueError):
            DynamicVotingProtocol(["A", "A", "B"])

    def test_order_must_cover_sites(self):
        with pytest.raises(ProtocolError):
            DynamicVotingProtocol(site_names(3), order=["A", "B"])

    def test_initial_metadata(self, dynamic5):
        meta = dynamic5.initial_metadata()
        assert meta.version == 0
        assert meta.cardinality == 5
        assert meta.distinguished == ()

    def test_decision_is_reported_in_outcome(self, dynamic5):
        copies = fresh_copies(dynamic5)
        outcome = dynamic5.attempt_update({"D", "E"}, copies)
        assert not outcome.accepted
        assert outcome.metadata is None
        assert outcome.decision.rule is Rule.DENIED
        assert not outcome.stale_members
