"""Unit tests for the ReplicatedFile convenience API."""

import pytest

from repro.core import (
    DynamicVotingProtocol,
    HybridProtocol,
    ReplicatedFile,
)
from repro.errors import QuorumDenied
from repro.types import site_names


@pytest.fixture
def file():
    return ReplicatedFile(HybridProtocol(site_names(5)), initial_value="v0")


class TestWrites:
    def test_write_installs_everywhere_in_the_partition(self, file):
        file.write({"A", "B", "C"}, "v1")
        for site in "ABC":
            assert file.value(site) == "v1"
            assert file.metadata(site).version == 1
        for site in "DE":
            assert file.value(site) == "v0"

    def test_write_denied_raises(self, file):
        with pytest.raises(QuorumDenied):
            file.write({"D", "E"}, "nope")

    def test_try_write_reports_denial(self, file):
        outcome = file.try_write({"D", "E"}, "nope")
        assert not outcome.accepted
        assert file.value("D") == "v0"

    def test_log_records_commits(self, file):
        file.write({"A", "B", "C"}, "v1")
        file.write({"A", "B"}, "v2")
        assert [(r.version, r.value) for r in file.log] == [(1, "v1"), (2, "v2")]
        assert file.log[1].partition == frozenset("AB")

    def test_stale_members_catch_up_on_write(self, file):
        file.write({"A", "B", "C"}, "v1")
        outcome = file.write({"A", "B", "C", "D", "E"}, "v2")
        assert outcome.stale_members == frozenset("DE")
        assert file.value("E") == "v2"

    def test_current_version(self, file):
        assert file.current_version() == 0
        file.write({"A", "B", "C"}, "v1")
        assert file.current_version() == 1


class TestReads:
    def test_read_returns_current_value(self, file):
        file.write({"A", "B", "C"}, "v1")
        # D and E are stale, but {A, D, E}... A alone of current trio: not
        # a quorum under the hybrid dynamic rule; use {A, B, D}:
        assert file.read({"A", "B", "D"}) == "v1"

    def test_read_requires_quorum(self, file):
        file.write({"A", "B", "C"}, "v1")
        with pytest.raises(QuorumDenied):
            file.read({"D", "E"})

    def test_read_does_not_change_metadata(self, file):
        file.write({"A", "B", "C"}, "v1")
        before = file.copies()
        file.read({"A", "B"})
        assert file.copies() == before


class TestMakeCurrent:
    def test_recovered_site_catches_up(self, file):
        file.write({"A", "B", "C"}, "v1")
        outcome = file.make_current("D", {"A", "B", "C", "D"})
        assert outcome.accepted
        assert file.value("D") == "v1"
        # The restart is treated like an update: version incremented.
        assert file.metadata("D").version == 2

    def test_recovery_without_quorum_fails(self, file):
        file.write({"A", "B", "C"}, "v1")
        outcome = file.make_current("D", {"D", "E"})
        assert not outcome.accepted
        assert file.value("D") == "v0"

    def test_recovering_site_must_join_its_partition(self, file):
        with pytest.raises(QuorumDenied):
            file.make_current("D", {"A", "B"})


class TestHistoryChecks:
    def test_linear_history_accepted(self, file):
        file.write({"A", "B", "C"}, "v1")
        file.write({"A", "B"}, "v2")
        file.write({"A", "B", "C", "D", "E"}, "v3")
        file.check_linear_history()

    def test_disjoint_sequences_never_fork(self):
        # Drive two protocols through a partition storm and verify no
        # interleaving ever produces a forked history.
        for protocol in (
            HybridProtocol(site_names(5)),
            DynamicVotingProtocol(site_names(5)),
        ):
            file = ReplicatedFile(protocol, initial_value=0)
            partitions = [
                {"A", "B", "C"}, {"D", "E"},
                {"A", "B"}, {"C"}, {"D", "E"},
                {"A"}, {"B", "C", "D", "E"},
                {"A", "B", "C", "D", "E"},
            ]
            for index, partition in enumerate(partitions):
                file.try_write(partition, index)
            file.check_linear_history()
