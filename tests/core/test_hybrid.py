"""Unit tests for the hybrid protocol, including the Section IV example."""

import pytest

from repro.core import HybridProtocol, ReplicatedFile, Rule
from repro.types import site_names

from ..conftest import fresh_copies
from .test_dynamic_voting import committed

PAPER_ORDER = ["E", "D", "C", "B", "A"]  # the paper ranks A greatest


class TestStaticPhase:
    def test_three_site_commit_lists_the_trio(self, hybrid5):
        copies = fresh_copies(hybrid5)
        outcome = committed(hybrid5, copies, {"A", "B", "C"})
        assert outcome.metadata.cardinality == 3
        assert outcome.metadata.distinguished == ("A", "B", "C")
        assert hybrid5.in_static_phase(outcome.metadata)

    def test_two_of_trio_update_preserves_sc_and_ds(self, hybrid5):
        copies = fresh_copies(hybrid5)
        committed(hybrid5, copies, {"A", "B", "C"})
        outcome = committed(hybrid5, copies, {"A", "C"})
        assert outcome.accepted
        assert outcome.metadata.cardinality == 3          # NOT 2
        assert outcome.metadata.distinguished == ("A", "B", "C")
        assert outcome.metadata.version == 2

    def test_static_phase_quorum_counts_trio_members_in_p_not_i(self, hybrid5):
        # After {A,C} update, B is stale; a partition containing stale B
        # plus current C holds two trio members and is distinguished.
        copies = fresh_copies(hybrid5)
        committed(hybrid5, copies, {"A", "B", "C"})
        committed(hybrid5, copies, {"A", "C"})
        decision = hybrid5.is_distinguished({"B", "C"}, copies)
        assert decision.granted
        assert decision.rule is Rule.STATIC_TRIO
        assert decision.current == frozenset("C")

    def test_one_trio_member_is_not_enough(self, hybrid5):
        copies = fresh_copies(hybrid5)
        committed(hybrid5, copies, {"A", "B", "C"})
        committed(hybrid5, copies, {"A", "C"})
        assert not hybrid5.is_distinguished({"A", "D", "E"}, copies).granted

    def test_dynamic_and_linear_would_deny_what_the_trio_rule_grants(self):
        # The paper's point at the BCDE update: neither dynamic voting nor
        # dynamic-linear permit it, the hybrid does.  Under dynamic-linear
        # the {A,C} commit sets SC=2 with DS the greater site -- A in the
        # paper's ordering -- so the claim depends on that ordering.
        from repro.core import DynamicLinearProtocol, DynamicVotingProtocol

        sites = site_names(5)
        protocols = [
            HybridProtocol(sites, order=PAPER_ORDER),
            DynamicVotingProtocol(sites, order=PAPER_ORDER),
            DynamicLinearProtocol(sites, order=PAPER_ORDER),
        ]
        for protocol in protocols:
            copies = fresh_copies(protocol)
            committed(protocol, copies, {"A", "B", "C"})
            committed(protocol, copies, {"A", "C"})
            decision = protocol.is_distinguished({"B", "C", "D", "E"}, copies)
            assert decision.granted == isinstance(protocol, HybridProtocol)

    def test_more_than_two_members_reenters_dynamic_phase(self, hybrid5):
        copies = fresh_copies(hybrid5)
        committed(hybrid5, copies, {"A", "B", "C"})
        committed(hybrid5, copies, {"A", "C"})
        outcome = committed(hybrid5, copies, {"B", "C", "D", "E"})
        assert outcome.accepted
        assert outcome.metadata.cardinality == 4
        assert not hybrid5.in_static_phase(outcome.metadata)

    def test_three_site_reentry_installs_a_new_trio(self, hybrid5):
        copies = fresh_copies(hybrid5)
        committed(hybrid5, copies, {"A", "B", "C"})
        outcome = committed(hybrid5, copies, {"B", "C", "D"})
        assert outcome.metadata.distinguished == ("B", "C", "D")
        assert outcome.metadata.cardinality == 3

    def test_trio_pairs_are_the_only_two_site_quorums(self, hybrid5):
        copies = fresh_copies(hybrid5)
        committed(hybrid5, copies, {"A", "B", "C"})
        pairs = ["AB", "AC", "BC", "AD", "BD", "CD", "AE", "CE", "DE"]
        granted = {
            pair
            for pair in pairs
            if hybrid5.is_distinguished(set(pair), copies).granted
        }
        assert granted == {"AB", "AC", "BC"}


class TestDynamicPhase:
    def test_even_commit_records_greatest(self, hybrid5):
        copies = fresh_copies(hybrid5)
        outcome = committed(hybrid5, copies, {"A", "B", "C", "D"})
        assert outcome.metadata.distinguished == ("D",)

    def test_linear_tiebreak_applies(self, hybrid5):
        copies = fresh_copies(hybrid5)
        committed(hybrid5, copies, {"A", "B", "C", "D"})
        decision = hybrid5.is_distinguished({"A", "D"}, copies)
        assert decision.granted
        assert decision.rule is Rule.LINEAR_TIEBREAK

    def test_initial_metadata_matches_n(self):
        assert HybridProtocol(site_names(3)).initial_metadata().distinguished == (
            "A", "B", "C",
        )
        assert HybridProtocol(site_names(4)).initial_metadata().distinguished == ("D",)
        assert HybridProtocol(site_names(5)).initial_metadata().distinguished == ()

    def test_three_replica_system_behaves_statically(self):
        # With n = 3 the hybrid is in its static phase from the start: any
        # two of the three sites always form the quorum and SC stays 3.
        protocol = HybridProtocol(site_names(3))
        copies = fresh_copies(protocol)
        outcome = committed(protocol, copies, {"A", "B"})
        assert outcome.metadata.cardinality == 3
        assert committed(protocol, copies, {"B", "C"}).accepted
        assert committed(protocol, copies, {"A", "C"}).accepted
        assert not protocol.is_distinguished({"A"}, copies).granted


class TestSectionIVExample:
    """Line-by-line replay of the paper's worked example."""

    @pytest.fixture
    def file(self):
        protocol = HybridProtocol(site_names(5), order=PAPER_ORDER)
        f = ReplicatedFile(protocol, initial_value="v0")
        for k in range(1, 10):
            f.write(f.sites, f"v{k}")
        return f

    def test_initial_state(self, file):
        for site in file.sites:
            assert file.metadata(site).version == 9
            assert file.metadata(site).cardinality == 5

    def test_step1_abc(self, file):
        file.write({"A", "B", "C"}, "v10")
        for site in "ABC":
            assert file.metadata(site).describe() == "VN=10 SC=3 DS=ABC"
        for site in "DE":
            assert file.metadata(site).version == 9

    def test_step2_ac(self, file):
        file.write({"A", "B", "C"}, "v10")
        file.write({"A", "C"}, "v11")
        for site in "AC":
            assert file.metadata(site).describe() == "VN=11 SC=3 DS=ABC"
        assert file.metadata("B").version == 10

    def test_step3_bcde(self, file):
        file.write({"A", "B", "C"}, "v10")
        file.write({"A", "C"}, "v11")
        outcome = file.write({"B", "C", "D", "E"}, "v12")
        assert outcome.decision.rule is Rule.STATIC_TRIO
        # DS is set to B: with the paper's ordering, B is the greatest of
        # the four participants.
        for site in "BCDE":
            assert file.metadata(site).describe() == "VN=12 SC=4 DS=B"
        assert file.metadata("A").version == 11

    def test_step4_be(self, file):
        file.write({"A", "B", "C"}, "v10")
        file.write({"A", "C"}, "v11")
        file.write({"B", "C", "D", "E"}, "v12")
        outcome = file.write({"B", "E"}, "v13")
        assert outcome.decision.rule is Rule.LINEAR_TIEBREAK
        for site in "BE":
            assert file.metadata(site).describe() == "VN=13 SC=2 DS=B"
        file.check_linear_history()
