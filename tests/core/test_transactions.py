"""Tests for multi-file transactions (footnote 2)."""

import pytest

from repro.core import (
    DynamicVotingProtocol,
    HybridProtocol,
    MajorityVotingProtocol,
    ReplicatedFile,
)
from repro.core.transactions import MultiFileTransaction
from repro.errors import QuorumDenied
from repro.types import site_names


@pytest.fixture
def bank():
    """Two account files on overlapping site groups, different protocols."""
    checking = ReplicatedFile(
        HybridProtocol(site_names(5)), initial_value=100
    )
    savings = ReplicatedFile(
        DynamicVotingProtocol(["C", "D", "E", "F", "G"]), initial_value=50
    )
    return MultiFileTransaction({"checking": checking, "savings": savings})


class TestCommit:
    def test_transfer_commits_with_quorums_on_both(self, bank):
        # {C, D, E} intersects both site groups with a majority in each.
        partition = {"A", "B", "C", "D", "E"}
        result = bank.execute(
            partition,
            writes={"checking": 70, "savings": 80},
            reads=(),
        )
        assert result.committed
        assert bank.files["checking"].value("C") == 70
        assert bank.files["savings"].value("D") == 80

    def test_reads_are_served_with_writes(self, bank):
        partition = {"A", "B", "C", "D", "E"}
        bank.execute(partition, writes={"checking": 70})
        result = bank.execute(
            partition, writes={"savings": 120}, reads=["checking"]
        )
        assert result.reads == {"checking": 70}

    def test_versions_advance_only_on_written_files(self, bank):
        partition = {"A", "B", "C", "D", "E"}
        bank.execute(partition, writes={"checking": 1}, reads=["savings"])
        assert bank.files["checking"].current_version() == 1
        assert bank.files["savings"].current_version() == 0


class TestAtomicity:
    def test_one_missing_quorum_blocks_everything(self, bank):
        # {A, B, C} is a hybrid quorum for checking, but only C holds
        # savings -- one of five dynamic-voting copies.
        partition = {"A", "B", "C"}
        result = bank.attempt(
            partition, writes={"checking": 0, "savings": 0}
        )
        assert not result.committed
        assert result.decisions["checking"].granted
        assert not result.decisions["savings"].granted
        # Nothing moved:
        assert bank.files["checking"].value("A") == 100
        assert bank.files["savings"].value("C") == 50

    def test_execute_raises_with_per_file_diagnosis(self, bank):
        with pytest.raises(QuorumDenied, match="savings"):
            bank.execute({"A", "B", "C"}, writes={"checking": 0, "savings": 0})

    def test_read_set_needs_a_quorum_too(self, bank):
        result = bank.attempt(
            {"A", "B", "C"}, writes={"checking": 0}, reads=["savings"]
        )
        assert not result.committed

    def test_partition_without_any_copy_rejected(self, bank):
        with pytest.raises(QuorumDenied, match="no site holding"):
            bank.attempt({"A", "B"}, writes={"savings": 0})

    def test_unknown_file_rejected(self, bank):
        with pytest.raises(QuorumDenied, match="unknown files"):
            bank.attempt(site_names(5), writes={"bonds": 1})

    def test_empty_transaction_manager_rejected(self):
        with pytest.raises(QuorumDenied):
            MultiFileTransaction({})


class TestCrossProtocolInteraction:
    def test_gifford_read_quorum_applies_inside_transactions(self):
        from repro.core import WeightedVotingProtocol

        ledger = ReplicatedFile(
            WeightedVotingProtocol(
                site_names(3), read_threshold=1, write_threshold=3
            ),
            initial_value="L0",
        )
        index = ReplicatedFile(
            MajorityVotingProtocol(site_names(3)), initial_value="I0"
        )
        txn = MultiFileTransaction({"ledger": ledger, "index": index})
        # {A, B}: a read-1 quorum for the ledger, a majority for the index.
        result = txn.execute({"A", "B"}, writes={"index": "I1"}, reads=["ledger"])
        assert result.reads == {"ledger": "L0"}
        # But writing the ledger needs all three sites:
        denied = txn.attempt({"A", "B"}, writes={"ledger": "L1"})
        assert not denied.committed

    def test_histories_stay_linear_per_file(self, bank):
        partition = {"A", "B", "C", "D", "E"}
        for k in range(5):
            bank.execute(partition, writes={"checking": k, "savings": k})
        bank.files["checking"].check_linear_history()
        bank.files["savings"].check_linear_history()
