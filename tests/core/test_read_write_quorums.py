"""Tests for the Gifford read/write quorum split in weighted voting."""

import pytest

from repro.core import ReplicatedFile, WeightedVotingProtocol
from repro.errors import ProtocolError, QuorumDenied
from repro.types import site_names

from ..conftest import fresh_copies


class TestConfiguration:
    def test_defaults_are_majorities(self):
        protocol = WeightedVotingProtocol(site_names(5))
        assert protocol.write_threshold == 3
        assert protocol.read_threshold == 3

    def test_read_one_write_all(self):
        protocol = WeightedVotingProtocol(
            site_names(3), read_threshold=1, write_threshold=3
        )
        assert protocol.read_threshold == 1

    def test_non_intersecting_writes_rejected(self):
        with pytest.raises(ProtocolError, match="intersecting"):
            WeightedVotingProtocol(site_names(4), write_threshold=2)

    def test_read_write_overlap_enforced(self):
        with pytest.raises(ProtocolError, match="r \\+ w"):
            WeightedVotingProtocol(
                site_names(5), read_threshold=1, write_threshold=3
            )

    def test_zero_read_threshold_rejected(self):
        with pytest.raises(ProtocolError):
            WeightedVotingProtocol(
                site_names(1), read_threshold=0, write_threshold=1
            )


class TestSemantics:
    def test_small_read_quorum_serves_reads_not_writes(self):
        protocol = WeightedVotingProtocol(
            site_names(3), read_threshold=1, write_threshold=3
        )
        copies = fresh_copies(protocol)
        assert protocol.read_decision({"A"}, copies).granted
        assert not protocol.is_distinguished({"A", "B"}, copies).granted
        assert protocol.is_distinguished({"A", "B", "C"}, copies).granted

    def test_read_quorum_always_sees_the_latest_write(self):
        # r=2, w=2 over 3 sites: every 2-site read overlaps every 2-site
        # write, so the max version in any read quorum is the global max.
        protocol = WeightedVotingProtocol(
            site_names(3), read_threshold=2, write_threshold=2
        )
        file = ReplicatedFile(protocol, initial_value="v0")
        file.write({"A", "B"}, "v1")
        file.write({"B", "C"}, "v2")
        for quorum in ({"A", "B"}, {"B", "C"}, {"A", "C"}):
            assert file.read(quorum) == "v2"

    def test_default_read_path_unchanged_for_other_protocols(self):
        from repro.core import HybridProtocol

        protocol = HybridProtocol(site_names(5))
        file = ReplicatedFile(protocol, initial_value="v0")
        file.write({"A", "B", "C"}, "v1")
        with pytest.raises(QuorumDenied):
            file.read({"D", "E"})

    def test_read_below_threshold_denied(self):
        protocol = WeightedVotingProtocol(
            site_names(5), read_threshold=2, write_threshold=4
        )
        file = ReplicatedFile(protocol, initial_value="v0")
        with pytest.raises(QuorumDenied):
            file.read({"E"})
        assert file.read({"D", "E"}) == "v0"

    def test_weighted_read_quorums(self):
        protocol = WeightedVotingProtocol(
            site_names(3),
            votes={"A": 2, "B": 1, "C": 1},
            read_threshold=2,
            write_threshold=3,
        )
        copies = fresh_copies(protocol)
        assert protocol.read_decision({"A"}, copies).granted  # 2 votes
        assert not protocol.read_decision({"B"}, copies).granted
        assert protocol.read_decision({"B", "C"}, copies).granted
