"""Unit tests for the decision records and update context."""

import pytest

from repro.core import QuorumDecision, Rule, UpdateContext, UpdateOutcome


class TestQuorumDecision:
    def make(self, granted=True, rule=Rule.DYNAMIC_MAJORITY):
        return QuorumDecision(granted, rule, 7, frozenset("AB"), 3)

    def test_truthiness_follows_granted(self):
        assert self.make(granted=True)
        assert not self.make(granted=False, rule=Rule.DENIED)

    def test_explain_granted(self):
        text = self.make().explain()
        assert "distinguished" in text
        assert "dynamic-majority" in text
        assert "M=7" in text
        assert "I={AB}" in text
        assert "N=3" in text

    def test_explain_denied(self):
        decision = QuorumDecision(False, Rule.DENIED, 2, frozenset(), 5)
        text = decision.explain()
        assert text.startswith("not distinguished")
        assert "I={-}" in text

    def test_immutability(self):
        decision = self.make()
        with pytest.raises(AttributeError):
            decision.granted = False

    def test_all_rules_have_distinct_values(self):
        values = [rule.value for rule in Rule]
        assert len(set(values)) == len(values)


class TestUpdateContext:
    def test_default_has_no_hint(self):
        assert UpdateContext().recent_failure is None

    def test_hint_is_carried(self):
        assert UpdateContext(recent_failure="C").recent_failure == "C"

    def test_frozen(self):
        context = UpdateContext(recent_failure="C")
        with pytest.raises(AttributeError):
            context.recent_failure = "D"


class TestUpdateOutcome:
    def test_denied_outcome_shape(self):
        decision = QuorumDecision(False, Rule.DENIED, 0, frozenset(), 1)
        outcome = UpdateOutcome(False, decision, None, frozenset())
        assert not outcome.accepted
        assert outcome.metadata is None
        assert outcome.stale_members == frozenset()
