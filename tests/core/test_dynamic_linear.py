"""Unit tests for dynamic-linear (dynamic voting with ordered copies)."""

from repro.core import DynamicLinearProtocol, Rule
from repro.types import site_names

from ..conftest import fresh_copies
from .test_dynamic_voting import committed


class TestTieBreaking:
    def test_even_commit_records_greatest_site(self, linear5):
        copies = fresh_copies(linear5)
        outcome = committed(linear5, copies, {"A", "B", "C", "D"})
        assert outcome.metadata.cardinality == 4
        assert outcome.metadata.distinguished == ("D",)

    def test_odd_commit_records_nothing(self, linear5):
        copies = fresh_copies(linear5)
        outcome = committed(linear5, copies, {"A", "B", "C"})
        assert outcome.metadata.distinguished == ()

    def test_half_with_distinguished_site_grants(self, linear5):
        copies = fresh_copies(linear5)
        committed(linear5, copies, {"A", "B", "C", "D"})  # DS = D
        decision = linear5.is_distinguished({"C", "D"}, copies)
        assert decision.granted
        assert decision.rule is Rule.LINEAR_TIEBREAK

    def test_half_without_distinguished_site_denied(self, linear5):
        copies = fresh_copies(linear5)
        committed(linear5, copies, {"A", "B", "C", "D"})  # DS = D
        assert not linear5.is_distinguished({"A", "B"}, copies).granted

    def test_the_two_halves_cannot_both_win(self, linear5):
        copies = fresh_copies(linear5)
        committed(linear5, copies, {"A", "B", "C", "D"})
        granted = [
            p
            for p in ({"A", "B"}, {"C", "D"})
            if linear5.is_distinguished(p, copies).granted
        ]
        assert len(granted) == 1

    def test_cardinality_shrinks_to_one(self, linear5):
        copies = fresh_copies(linear5)
        committed(linear5, copies, {"A", "B", "C", "D"})  # SC=4, DS=D
        committed(linear5, copies, {"C", "D"})            # SC=2, DS=D
        outcome = committed(linear5, copies, {"D"})       # half incl. DS
        assert outcome.accepted
        assert outcome.metadata.cardinality == 1
        # ...and the single current site now rules alone:
        assert linear5.is_distinguished({"D"}, copies).granted
        assert not linear5.is_distinguished({"A", "B", "C", "E"}, copies).granted

    def test_distinguished_site_must_be_current(self, linear5):
        # DS in P but with a stale copy does not break the tie: the rule
        # demands DS be in I (step 4 checks membership of I).
        copies = fresh_copies(linear5)
        committed(linear5, copies, {"A", "B", "C", "D"})  # v1 at ABCD, DS=D
        committed(linear5, copies, {"A", "B", "C"})       # v2 at ABC, SC=3
        committed(linear5, copies, {"A", "B", "C", "D"})  # v3, SC=4, DS=D
        committed(linear5, copies, {"A", "B"})            # v4 at AB? tie: DS=D not in I
        # The {A,B} attempt above must have been denied: card(I)=2 of 4 and
        # D not in I... verify directly:
        assert copies["A"].version == 3
        decision = linear5.is_distinguished({"A", "B"}, copies)
        assert not decision.granted

    def test_tiebreak_requires_ds_in_current_not_just_partition(self, linear5):
        copies = fresh_copies(linear5)
        committed(linear5, copies, {"A", "B", "C", "D"})  # DS = D
        committed(linear5, copies, {"A", "B", "D"})       # v2 at ABD, SC=3
        # Now A,B,D current at v2 with SC=3; C stale at v1.
        # Partition {A, C}: I = {A}, N = 3 -> no tie possible (odd), denied.
        assert not linear5.is_distinguished({"A", "C"}, copies).granted

    def test_initial_ds_for_even_n(self):
        protocol = DynamicLinearProtocol(site_names(4))
        assert protocol.initial_metadata().distinguished == ("D",)

    def test_initial_ds_for_odd_n(self, linear5):
        assert linear5.initial_metadata().distinguished == ()

    def test_custom_order_changes_ds(self):
        protocol = DynamicLinearProtocol(
            site_names(4), order=["D", "C", "B", "A"]  # A is greatest
        )
        copies = fresh_copies(protocol)
        outcome = committed(protocol, copies, {"A", "B", "C", "D"})
        assert outcome.metadata.distinguished == ("A",)


class TestDominanceOverDynamic:
    def test_accepts_whenever_dynamic_does_on_shared_history(self, linear5, dynamic5):
        # With identical histories the linear rule is a strict superset of
        # the dynamic rule: every dynamic grant is a linear grant.
        linear_copies = fresh_copies(linear5)
        dynamic_copies = fresh_copies(dynamic5)
        partitions = [
            {"A", "B", "C", "D"},
            {"A", "B", "C"},
            {"A", "B"},
        ]
        for partition in partitions:
            d = dynamic5.is_distinguished(partition, dynamic_copies)
            l = linear5.is_distinguished(partition, linear_copies)
            if d.granted:
                assert l.granted
            committed(dynamic5, dynamic_copies, partition)
            committed(linear5, linear_copies, partition)
