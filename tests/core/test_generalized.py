"""Unit tests for the generalized hybrid family (Section VII remark)."""

import pytest

from repro.core import GeneralizedHybridProtocol, HybridProtocol, Rule
from repro.errors import ProtocolError
from repro.types import site_names

from ..conftest import fresh_copies
from .test_dynamic_voting import committed


class TestValidation:
    def test_even_threshold_rejected(self):
        with pytest.raises(ProtocolError):
            GeneralizedHybridProtocol(site_names(6), threshold=4)

    def test_threshold_below_three_rejected(self):
        with pytest.raises(ProtocolError):
            GeneralizedHybridProtocol(site_names(5), threshold=1)

    def test_threshold_above_n_rejected(self):
        with pytest.raises(ProtocolError):
            GeneralizedHybridProtocol(site_names(4), threshold=5)

    def test_static_majority(self):
        protocol = GeneralizedHybridProtocol(site_names(7), threshold=5)
        assert protocol.static_majority == 3


class TestThresholdThreeEqualsHybrid:
    def test_same_decisions_on_a_partition_cascade(self):
        sites = site_names(5)
        generalized = GeneralizedHybridProtocol(sites, threshold=3)
        hybrid = HybridProtocol(sites)
        g_copies, h_copies = fresh_copies(generalized), fresh_copies(hybrid)
        partitions = [
            {"A", "B", "C", "D"},
            {"A", "B", "C"},
            {"A", "C"},
            {"B", "C", "D", "E"},
            {"B", "E"},
            {"E"},
        ]
        for partition in partitions:
            g = generalized.attempt_update(partition, g_copies)
            h = hybrid.attempt_update(partition, h_copies)
            assert g.accepted == h.accepted, partition
            if g.accepted:
                assert g.metadata == h.metadata
                for site in partition:
                    g_copies[site] = g.metadata
                    h_copies[site] = h.metadata

    def test_initial_metadata_matches_hybrid(self):
        for n in (3, 4, 5, 6):
            g = GeneralizedHybridProtocol(site_names(n), threshold=3)
            h = HybridProtocol(site_names(n))
            assert g.initial_metadata() == h.initial_metadata()


class TestLargerThresholds:
    def test_five_site_update_installs_the_list(self):
        protocol = GeneralizedHybridProtocol(site_names(7), threshold=5)
        copies = fresh_copies(protocol)
        outcome = committed(protocol, copies, set("ABCDE"))
        assert outcome.metadata.cardinality == 5
        assert outcome.metadata.distinguished == tuple("ABCDE")
        assert protocol.in_static_phase(outcome.metadata)

    def test_static_majority_of_five_grants(self):
        protocol = GeneralizedHybridProtocol(site_names(7), threshold=5)
        copies = fresh_copies(protocol)
        committed(protocol, copies, set("ABCDE"))
        # Knock the current set down so only the static rule can fire:
        # partition {A, B, C} holds 3 of the 5 listed sites -> granted.
        committed(protocol, copies, set("ABCD"))  # dynamic re-entry, SC=4
        # rebuild the static list:
        committed(protocol, copies, set("ABCDE"))
        decision = protocol.is_distinguished({"C", "D", "E"}, copies)
        assert decision.granted
        assert decision.rule in (Rule.DYNAMIC_MAJORITY, Rule.STATIC_TRIO)

    def test_minimal_majority_update_stays_static(self):
        protocol = GeneralizedHybridProtocol(site_names(7), threshold=5)
        copies = fresh_copies(protocol)
        committed(protocol, copies, set("ABCDE"))
        outcome = committed(protocol, copies, set("ABC"))  # exactly majority
        assert outcome.accepted
        assert outcome.metadata.cardinality == 5          # unchanged
        assert outcome.metadata.distinguished == tuple("ABCDE")

    def test_two_of_five_listed_denied(self):
        protocol = GeneralizedHybridProtocol(site_names(7), threshold=5)
        copies = fresh_copies(protocol)
        committed(protocol, copies, set("ABCDE"))
        committed(protocol, copies, set("ABC"))   # static phase persists
        assert not protocol.is_distinguished({"D", "E"}, copies).granted

    def test_inert_under_frequent_updates(self):
        # The model-level finding: any t >= 5 behaves exactly like
        # dynamic-linear because one failure from t up sites leaves t-1 >
        # (t+1)/2 and the next update dismantles the list.
        from repro.markov import availability, derive_chain

        chain = derive_chain(
            GeneralizedHybridProtocol(site_names(5), threshold=5)
        )
        for ratio in (0.5, 1.0, 3.0):
            assert chain.availability(ratio) == pytest.approx(
                availability("dynamic-linear", 5, ratio), abs=1e-12
            )
