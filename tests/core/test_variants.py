"""Unit tests for the Section VII variants (modified hybrid, optimal candidate)."""

from repro.core import (
    HybridProtocol,
    ModifiedHybridProtocol,
    OptimalCandidateProtocol,
    Rule,
    UpdateContext,
)
from repro.types import site_names

from ..conftest import fresh_copies
from .test_dynamic_voting import committed


class TestModifiedHybrid:
    def test_two_site_commit_names_a_down_site(self, modified5):
        copies = fresh_copies(modified5)
        committed(modified5, copies, {"A", "B", "C"})     # SC=3
        outcome = committed(modified5, copies, {"A", "B"})
        assert outcome.metadata.cardinality == 2          # Change 1
        (named,) = outcome.metadata.distinguished
        assert named not in {"A", "B"}                    # a down site

    def test_recent_failure_hint_is_honoured(self, modified5):
        copies = fresh_copies(modified5)
        committed(modified5, copies, {"A", "B", "C"})
        outcome = modified5.attempt_update(
            {"A", "B"}, copies, UpdateContext(recent_failure="C")
        )
        assert outcome.metadata.distinguished == ("C",)

    def test_hint_inside_partition_is_ignored(self, modified5):
        copies = fresh_copies(modified5)
        committed(modified5, copies, {"A", "B", "C"})
        outcome = modified5.attempt_update(
            {"A", "B"}, copies, UpdateContext(recent_failure="A")
        )
        (named,) = outcome.metadata.distinguished
        assert named not in {"A", "B"}

    def test_pair_plus_named_site_is_a_quorum(self, modified5):
        copies = fresh_copies(modified5)
        committed(modified5, copies, {"A", "B", "C"})
        committed(
            modified5, copies, {"A", "B"},
        )
        # default naming picks the greatest down site: E
        assert copies["A"].distinguished == ("E",)
        # one pair member + E: granted (the virtual trio rule)
        decision = modified5.is_distinguished({"A", "E"}, copies)
        assert decision.granted
        assert decision.rule is Rule.LINEAR_TIEBREAK
        # one pair member + another site: denied
        assert not modified5.is_distinguished({"A", "D"}, copies).granted

    def test_both_pair_members_are_a_quorum(self, modified5):
        copies = fresh_copies(modified5)
        committed(modified5, copies, {"A", "B", "C"})
        committed(modified5, copies, {"A", "B"})
        assert modified5.is_distinguished({"A", "B"}, copies).granted

    def test_matches_hybrid_acceptances_on_the_model_history(self):
        # Replay a failure/repair history in which the correspondence is
        # exact (the naming hint equals the trio's missing member) and
        # check both protocols accept identical partitions throughout.
        sites = site_names(5)
        hybrid = HybridProtocol(sites)
        modified = ModifiedHybridProtocol(sites)
        h_copies, m_copies = fresh_copies(hybrid), fresh_copies(modified)
        # Cascade down: 5 -> 4 -> 3 -> (2 of trio) -> blocked -> revive.
        history = [
            ({"A", "B", "C", "D"}, None),
            ({"A", "B", "C"}, None),
            ({"A", "B"}, "C"),            # C fails; trio pair survives
            ({"A"}, "B"),                 # B fails; blocked for both
            ({"A", "C"}, None),           # C repaired: two of trio
            ({"A", "B", "C", "D", "E"}, None),
        ]
        for partition, failed in history:
            context = UpdateContext(recent_failure=failed)
            h = hybrid.attempt_update(partition, h_copies, context)
            m = modified.attempt_update(partition, m_copies, context)
            assert h.accepted == m.accepted, partition
            if h.accepted:
                for site in partition:
                    h_copies[site] = h.metadata
                    m_copies[site] = m.metadata

    def test_initial_ds(self):
        assert ModifiedHybridProtocol(site_names(4)).initial_metadata().distinguished == ("D",)
        assert ModifiedHybridProtocol(site_names(5)).initial_metadata().distinguished == ()


class TestOptimalCandidate:
    def test_two_site_commit_keeps_ds_empty(self, optimal5):
        copies = fresh_copies(optimal5)
        committed(optimal5, copies, {"A", "B", "C"})
        outcome = committed(optimal5, copies, {"A", "B"})
        assert outcome.metadata.cardinality == 2
        assert outcome.metadata.distinguished == ()

    def test_single_current_with_global_majority_grants(self, optimal5):
        copies = fresh_copies(optimal5)
        committed(optimal5, copies, {"A", "B", "C"})
        committed(optimal5, copies, {"A", "B"})
        decision = optimal5.is_distinguished({"A", "C", "D"}, copies)
        assert decision.granted
        assert decision.rule is Rule.GLOBAL_TIEBREAK

    def test_single_current_below_majority_denied(self, optimal5):
        copies = fresh_copies(optimal5)
        committed(optimal5, copies, {"A", "B", "C"})
        committed(optimal5, copies, {"A", "B"})
        assert not optimal5.is_distinguished({"A", "C"}, copies).granted

    def test_both_current_always_grant(self, optimal5):
        copies = fresh_copies(optimal5)
        committed(optimal5, copies, {"A", "B", "C"})
        committed(optimal5, copies, {"A", "B"})
        assert optimal5.is_distinguished({"A", "B"}, copies).granted

    def test_footnote_equivalence(self, optimal5):
        # "updates are permitted if the partition includes both of the
        # sites with current copies, or if the partition contains one of
        # them and more than half of the total sites" -- exhaustively over
        # all partitions containing at least one current site.
        import itertools

        copies = fresh_copies(optimal5)
        committed(optimal5, copies, {"A", "B", "C"})
        committed(optimal5, copies, {"A", "B"})
        current = {"A", "B"}
        for size in range(1, 6):
            for combo in itertools.combinations("ABCDE", size):
                partition = set(combo)
                if not partition & current:
                    continue
                expected = current <= partition or (
                    len(partition & current) == 1 and 2 * len(partition) > 5
                )
                got = optimal5.is_distinguished(partition, copies).granted
                assert got == expected, partition

    def test_beats_hybrid_at_high_ratio_for_odd_n(self):
        # The paper reports "preliminary evidence" that this variant bests
        # the hybrid algorithm at large repair/failure ratios.  Our exact
        # chains refine that: it holds for odd n...
        from repro.markov import availability

        for n in (5, 7, 9):
            assert availability("optimal-candidate", n, 5.0) > availability(
                "hybrid", n, 5.0
            )

    def test_loses_to_hybrid_for_even_n(self):
        # ...but for even n the hybrid's static trio revives at rate 2*mu
        # (either down trio member) while the pair-based variant needs the
        # specific down pair member (rate mu), and the global-majority
        # escape needs strictly more than half the sites -- so the hybrid
        # keeps the edge (a refinement of the paper's footnote 6 remark).
        from repro.markov import availability

        for n in (4, 6, 8):
            assert availability("hybrid", n, 5.0) > availability(
                "optimal-candidate", n, 5.0
            )
