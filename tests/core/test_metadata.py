"""Unit tests for the (VN, SC, DS) metadata record and its helpers."""

import pytest

from repro.core import ReplicaMetadata, current_sites, partition_summary
from repro.errors import MetadataInvariantError


class TestReplicaMetadata:
    def test_fields(self):
        meta = ReplicaMetadata(10, 3, ("A", "B", "C"))
        assert meta.version == 10
        assert meta.cardinality == 3
        assert meta.distinguished == ("A", "B", "C")

    def test_distinguished_is_sorted_canonically(self):
        meta = ReplicaMetadata(1, 3, ("C", "A", "B"))
        assert meta.distinguished == ("A", "B", "C")

    def test_equal_by_value_regardless_of_ds_order(self):
        assert ReplicaMetadata(1, 3, ("C", "A", "B")) == ReplicaMetadata(
            1, 3, ("A", "B", "C")
        )

    def test_hashable(self):
        assert len({ReplicaMetadata(1, 2), ReplicaMetadata(1, 2)}) == 1

    def test_negative_version_rejected(self):
        with pytest.raises(MetadataInvariantError):
            ReplicaMetadata(-1, 3)

    def test_nonpositive_cardinality_rejected(self):
        with pytest.raises(MetadataInvariantError):
            ReplicaMetadata(0, 0)

    def test_duplicate_distinguished_rejected(self):
        with pytest.raises(MetadataInvariantError):
            ReplicaMetadata(0, 3, ("A", "A", "B"))

    def test_distinguished_site_singleton(self):
        assert ReplicaMetadata(0, 2, ("B",)).distinguished_site == "B"

    def test_distinguished_site_requires_singleton(self):
        with pytest.raises(MetadataInvariantError):
            ReplicaMetadata(0, 3, ("A", "B", "C")).distinguished_site
        with pytest.raises(MetadataInvariantError):
            ReplicaMetadata(0, 3).distinguished_site

    def test_bump_version_preserves_sc_and_ds(self):
        meta = ReplicaMetadata(11, 3, ("A", "B", "C"))
        bumped = meta.bump_version()
        assert bumped.version == 12
        assert bumped.cardinality == 3
        assert bumped.distinguished == ("A", "B", "C")

    def test_describe(self):
        assert ReplicaMetadata(10, 3, ("A", "B", "C")).describe() == "VN=10 SC=3 DS=ABC"
        assert ReplicaMetadata(9, 5).describe() == "VN=9 SC=5 DS=-"

    def test_immutable(self):
        meta = ReplicaMetadata(1, 2)
        with pytest.raises(AttributeError):
            meta.version = 5


class TestCurrentSites:
    def test_all_fresh(self):
        copies = {s: ReplicaMetadata(3, 3) for s in "ABC"}
        assert current_sites(copies) == frozenset("ABC")

    def test_mixed_versions(self):
        copies = {
            "A": ReplicaMetadata(3, 2),
            "B": ReplicaMetadata(5, 2),
            "C": ReplicaMetadata(5, 2),
        }
        assert current_sites(copies) == frozenset("BC")

    def test_within_restricts(self):
        copies = {
            "A": ReplicaMetadata(3, 2),
            "B": ReplicaMetadata(5, 2),
            "C": ReplicaMetadata(4, 2),
        }
        assert current_sites(copies, within={"A", "C"}) == frozenset("C")

    def test_empty_within(self):
        copies = {"A": ReplicaMetadata(3, 2)}
        assert current_sites(copies, within=set()) == frozenset()


class TestPartitionSummary:
    def test_summary(self):
        meta = ReplicaMetadata(7, 4, ("D",))
        copies = {
            "A": meta,
            "B": meta,
            "C": ReplicaMetadata(2, 5),
        }
        version, holders, shared = partition_summary(copies, {"A", "B", "C"})
        assert version == 7
        assert holders == frozenset("AB")
        assert shared == meta

    def test_disagreeing_current_metadata_rejected(self):
        copies = {
            "A": ReplicaMetadata(7, 4),
            "B": ReplicaMetadata(7, 3),
        }
        with pytest.raises(MetadataInvariantError):
            partition_summary(copies, {"A", "B"})

    def test_empty_partition_rejected(self):
        with pytest.raises(MetadataInvariantError):
            partition_summary({}, {"A"})
