"""Unit tests for the static voting protocol family."""

import pytest

from repro.core import (
    MajorityVotingProtocol,
    PrimaryCopyProtocol,
    PrimarySiteVotingProtocol,
    Rule,
    WeightedVotingProtocol,
)
from repro.errors import ProtocolError
from repro.types import site_names

from ..conftest import fresh_copies


class TestMajorityVoting:
    def test_majority_grants(self, voting5):
        copies = fresh_copies(voting5)
        decision = voting5.is_distinguished({"A", "B", "C"}, copies)
        assert decision.granted
        assert decision.rule is Rule.STATIC_MAJORITY

    def test_half_denied_even_n(self):
        protocol = MajorityVotingProtocol(site_names(4))
        copies = fresh_copies(protocol)
        assert not protocol.is_distinguished({"A", "B"}, copies).granted

    def test_minority_denied(self, voting5):
        copies = fresh_copies(voting5)
        decision = voting5.is_distinguished({"D", "E"}, copies)
        assert not decision.granted
        assert decision.rule is Rule.DENIED

    def test_quorum_ignores_staleness(self, voting5):
        # Voting counts sites, not versions; a majority with one stale
        # member is still distinguished (the stale member catches up).
        copies = fresh_copies(voting5)
        outcome = voting5.attempt_update({"A", "B", "C"}, copies)
        copies.update(dict.fromkeys("ABC", outcome.metadata))
        decision = voting5.is_distinguished({"A", "D", "E"}, copies)
        assert decision.granted
        assert decision.current == frozenset("A")

    def test_commit_pins_cardinality_to_n(self, voting5):
        copies = fresh_copies(voting5)
        outcome = voting5.attempt_update({"A", "B", "C"}, copies)
        assert outcome.metadata.cardinality == 5
        assert outcome.metadata.version == 1
        assert outcome.metadata.distinguished == ()

    def test_two_disjoint_majorities_impossible(self, voting5):
        copies = fresh_copies(voting5)
        granted = [
            p
            for p in ({"A", "B", "C"}, {"D", "E"})
            if voting5.is_distinguished(p, copies).granted
        ]
        assert len(granted) == 1


class TestWeightedVoting:
    def test_weighted_quorum(self):
        protocol = WeightedVotingProtocol(
            site_names(3), votes={"A": 3, "B": 1, "C": 1}
        )
        copies = fresh_copies(protocol)
        assert protocol.is_distinguished({"A"}, copies).granted
        assert not protocol.is_distinguished({"B", "C"}, copies).granted

    def test_zero_vote_site_is_a_witnessless_observer(self):
        protocol = WeightedVotingProtocol(
            site_names(3), votes={"A": 1, "B": 1, "C": 0}
        )
        copies = fresh_copies(protocol)
        assert protocol.is_distinguished({"A", "B"}, copies).granted
        assert not protocol.is_distinguished({"A", "C"}, copies).granted

    def test_total_votes(self):
        protocol = WeightedVotingProtocol(site_names(3), votes={"A": 2})
        assert protocol.total_votes == 4  # 2 + 1 + 1 defaults

    def test_negative_votes_rejected(self):
        with pytest.raises(ProtocolError):
            WeightedVotingProtocol(site_names(3), votes={"A": -1})

    def test_votes_for_stranger_rejected(self):
        with pytest.raises(ProtocolError):
            WeightedVotingProtocol(site_names(3), votes={"Z": 1})

    def test_all_zero_votes_rejected(self):
        with pytest.raises(ProtocolError):
            WeightedVotingProtocol(
                site_names(2), votes={"A": 0, "B": 0}
            )


class TestPrimarySiteVoting:
    def test_tie_with_primary_grants(self):
        protocol = PrimarySiteVotingProtocol(site_names(4), primary="A")
        copies = fresh_copies(protocol)
        decision = protocol.is_distinguished({"A", "B"}, copies)
        assert decision.granted
        assert decision.rule is Rule.PRIMARY_TIEBREAK

    def test_tie_without_primary_denied(self):
        protocol = PrimarySiteVotingProtocol(site_names(4), primary="A")
        copies = fresh_copies(protocol)
        assert not protocol.is_distinguished({"C", "D"}, copies).granted

    def test_majority_does_not_need_primary(self):
        protocol = PrimarySiteVotingProtocol(site_names(4), primary="A")
        copies = fresh_copies(protocol)
        decision = protocol.is_distinguished({"B", "C", "D"}, copies)
        assert decision.granted
        assert decision.rule is Rule.STATIC_MAJORITY

    def test_default_primary_is_greatest(self):
        protocol = PrimarySiteVotingProtocol(site_names(4))
        assert protocol.primary == "D"

    def test_unknown_primary_rejected(self):
        with pytest.raises(ProtocolError):
            PrimarySiteVotingProtocol(site_names(4), primary="Z")


class TestPrimaryCopy:
    def test_primary_partition_grants_regardless_of_size(self):
        protocol = PrimaryCopyProtocol(site_names(5), primary="C")
        copies = fresh_copies(protocol)
        assert protocol.is_distinguished({"C"}, copies).granted
        assert not protocol.is_distinguished({"A", "B", "D", "E"}, copies).granted

    def test_default_primary(self):
        assert PrimaryCopyProtocol(site_names(3)).primary == "C"
