"""Unit tests for the protocol registry and shared base behaviour."""

import pytest

from repro.core import (
    PAPER_PROTOCOLS,
    PROTOCOLS,
    ReplicaControlProtocol,
    make_protocol,
    protocol_names,
)
from repro.errors import ProtocolError
from repro.types import site_names


class TestRegistry:
    def test_all_names_construct(self):
        for name in protocol_names():
            protocol = make_protocol(name, site_names(5))
            assert isinstance(protocol, ReplicaControlProtocol)
            assert protocol.name == name
            assert protocol.n_sites == 5

    def test_paper_protocols_subset(self):
        assert set(PAPER_PROTOCOLS) <= set(PROTOCOLS)
        assert PAPER_PROTOCOLS == ("voting", "dynamic", "dynamic-linear", "hybrid")

    def test_unknown_name_rejected_with_options(self):
        with pytest.raises(ProtocolError, match="hybrid"):
            make_protocol("no-such-protocol", site_names(3))


class TestBaseBehaviour:
    def test_order_defaults_to_lexicographic(self):
        protocol = make_protocol("hybrid", ["C", "A", "B"])
        assert protocol.order == ("A", "B", "C")
        assert protocol.greatest({"A", "B"}) == "B"

    def test_custom_order(self):
        protocol = make_protocol("hybrid", ["A", "B", "C"])
        reverse = make_protocol("dynamic-linear", ["A", "B", "C"])
        assert protocol.greatest({"A", "C"}) == "C"
        assert reverse.greatest({"A", "C"}) == "C"

    def test_greatest_of_empty_rejected(self):
        protocol = make_protocol("hybrid", site_names(3))
        with pytest.raises(ProtocolError):
            protocol.greatest([])

    def test_sites_frozen(self):
        protocol = make_protocol("dynamic", site_names(4))
        assert protocol.sites == frozenset("ABCD")

    def test_initial_metadata_version_zero_cardinality_n(self):
        for name in protocol_names():
            meta = make_protocol(name, site_names(6)).initial_metadata()
            assert meta.version == 0
            assert meta.cardinality == 6

    def test_every_protocol_grants_the_full_partition_initially(self):
        for name in protocol_names():
            protocol = make_protocol(name, site_names(5))
            copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
            assert protocol.is_distinguished(protocol.sites, copies).granted, name
