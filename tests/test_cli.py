"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.protocol == "hybrid"
        assert args.sites == 5

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()


class TestCommands:
    def test_compare(self, capsys):
        assert main(["compare", "-n", "4", "-r", "1.0", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out and "voting" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "protocol: hybrid" in out
        assert "ACCEPT" in out

    def test_chain_dump(self, capsys):
        assert main(["chain", "--protocol", "hybrid", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "4 states" in out
        assert "(2, 3, 0)" in out

    def test_chain_dump_other_protocol(self, capsys):
        assert main(["chain", "--protocol", "dynamic", "-n", "3"]) == 0
        assert "states" in capsys.readouterr().out

    def test_crossover(self, capsys):
        assert main(["crossover", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "0.66" in out  # 0.665 bracket

    def test_figure(self, capsys):
        assert main(["figure", "3", "--steps", "4"]) == 0
        assert "mu/lambda" in capsys.readouterr().out

    def test_theorem3_small_range(self, capsys):
        assert main(["theorem3", "--n-min", "3", "--n-max", "4"]) == 0
        out = capsys.readouterr().out
        assert "0.82" in out

    def test_simulate_agrees(self, capsys):
        code = main([
            "simulate", "--protocol", "voting", "-n", "3",
            "-r", "1.0", "--events", "4000", "--replicates", "4",
        ])
        assert code == 0
        assert "analytic" in capsys.readouterr().out

    def test_compare_json(self, capsys):
        assert main(["compare", "-n", "3", "-r", "1.0", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n_sites"] == 3
        assert report["availability"]["hybrid"]["1"] == pytest.approx(0.375)

    def test_compare_manifest(self, tmp_path, capsys):
        path = tmp_path / "compare.json"
        code = main(["compare", "-n", "3", "-r", "1.0", "--manifest", str(path)])
        assert code == 0
        capsys.readouterr()
        manifest = json.loads(path.read_text())
        assert manifest["command"] == "compare"
        assert manifest["seed"] is None
        # The chain-backed protocols each record a numeric solve (voting
        # has a closed form and never builds a chain).
        assert manifest["metrics"]["markov.solve.numeric"]["value"] >= 3

    def test_simulate_metrics_and_manifest(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        main([
            "simulate", "--protocol", "hybrid", "-n", "3", "-r", "1.0",
            "--events", "500", "--replicates", "2",
            "--metrics", "--manifest", str(path),
        ])
        out = capsys.readouterr().out
        assert "mc.replicates" in out
        assert "sim.event.site-failure" in out
        manifest = json.loads(path.read_text())
        assert manifest["protocol"] == {"name": "hybrid", "n_sites": 3}
        assert manifest["seed"] == 2026
        assert len(manifest["metrics"]) >= 10
        assert main(["validate-manifest", str(path)]) == 0

    def test_simulate_without_telemetry_flags_prints_no_metrics(self, capsys):
        main([
            "simulate", "--protocol", "voting", "-n", "3",
            "--events", "500", "--replicates", "2",
        ])
        assert "mc.replicates" not in capsys.readouterr().out

    def test_trace_renders_the_protocol_transcript(self, capsys):
        assert main(["trace", "--protocol", "hybrid", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "[message]" in out
        assert "[topology]" in out
        assert "VoteRequest" in out
        assert "committed" in out

    def test_trace_jsonl_parses_line_by_line(self, capsys):
        assert main(["trace", "-n", "3", "--jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) > 10
        events = [json.loads(line) for line in lines]
        assert {"time", "category", "description", "fields"} <= set(events[0])
        assert any(e["category"] == "span" for e in events)

    def test_trace_category_filter(self, capsys):
        assert main(["trace", "-n", "3", "--jsonl", "--categories", "run"]) == 0
        events = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert events and all(e["category"] == "run" for e in events)

    def test_trace_is_deterministic_modulo_run_ids(self, capsys):
        # Run identifiers are process-unique (a fresh CLI process always
        # starts at 1), so two in-process invocations are compared after
        # renumbering them by order of first appearance.
        def normalized():
            main(["trace", "-n", "3", "--jsonl"])
            events = [
                json.loads(line)
                for line in capsys.readouterr().out.strip().splitlines()
            ]
            ids: dict[int, int] = {}
            for event in events:
                run_id = event["fields"].get("run_id")
                if run_id is not None:
                    fresh = ids.setdefault(run_id, len(ids) + 1)
                    event["fields"]["run_id"] = fresh
                    event["description"] = event["description"].replace(
                        f"run {run_id}", f"run {fresh}"
                    )
            return events

        assert normalized() == normalized()

    def test_proof(self, capsys):
        assert main(["proof", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "Descartes" in out
        assert "0.82" in out

    def test_transient(self, capsys):
        assert main(["transient", "-n", "4", "-r", "2.0", "-t", "0", "1", "5"]) == 0
        out = capsys.readouterr().out
        assert "mean time to first blocking" in out
        assert "1.0000" in out  # A(0) = 1


class TestLintCommand:
    def test_lint_json_smoke(self, tmp_path, capsys):
        import json

        snippet = tmp_path / "scratch.py"
        snippet.write_text("import random\n")
        code = main(["lint", str(snippet), "--no-baseline", "--json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["exit_code"] == 1
        assert any(f["rule"] == "REP001" for f in report["new"])

    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        snippet = tmp_path / "scratch.py"
        snippet.write_text('"""Nothing to see."""\n')
        assert main(["lint", str(snippet), "--no-baseline"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out


class TestCheckCommand:
    def test_clean_exploration_exits_zero(self, capsys):
        code = main(
            ["check", "--protocol", "dynamic", "--updates", "1", "--depth", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no invariant violations" in out
        assert "384 states" in out

    def test_json_report_shape(self, capsys):
        code = main(
            [
                "check",
                "--protocol",
                "dynamic",
                "--updates",
                "1",
                "--depth",
                "8",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        (result,) = report["results"]
        assert result["protocol"] == "dynamic"
        assert result["states"] == 384
        assert result["violation"] is None

    def test_fork_bug_injection_fails_with_replayable_counterexample(
        self, tmp_path, capsys
    ):
        artifact = tmp_path / "fork.jsonl"
        code = main(
            [
                "check",
                "--protocol",
                "dynamic",
                "--updates",
                "1",
                "--depth",
                "8",
                "--inject-fork-bug",
                "--counterexample",
                str(artifact),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "participants-only" in out
        assert artifact.exists()
        capsys.readouterr()
        assert main(["check", "--replay", str(artifact)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_unknown_protocol_is_a_usage_error(self, capsys):
        assert main(["check", "--protocol", "nope"]) == 2
        assert "unknown protocol" in capsys.readouterr().err


class TestTraceCausalModes:
    def test_causal_mode_renders_per_trace_listing(self, capsys):
        assert main(["trace", "causal", "--protocol", "hybrid", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace " in out
        assert "submit" in out
        assert "commit" in out
        assert "<-" in out  # parent edges are shown

    def test_causal_jsonl_is_pure_causal_category(self, capsys):
        assert main(["trace", "causal", "-n", "3", "--jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) > 20
        events = [json.loads(line) for line in lines]
        assert all(e["category"] == "causal" for e in events)
        assert any(e["fields"]["event"] == "commit" for e in events)

    def test_causal_jsonl_is_deterministic_for_a_seed(self, capsys):
        def export():
            main(["trace", "causal", "-n", "3", "--jsonl", "--seed", "7"])
            return capsys.readouterr().out

        assert export() == export()

    def test_critical_path_reports_per_phase_latency(self, capsys):
        assert main(["trace", "critical-path", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "committed version" in out
        assert "latency" in out
        # The per-phase breakdown bills protocol phases, not raw events.
        assert "vote" in out

    def test_critical_path_reads_an_exported_file(self, tmp_path, capsys):
        main(["trace", "causal", "-n", "3", "--jsonl"])
        artifact = tmp_path / "trace.jsonl"
        artifact.write_text(capsys.readouterr().out)
        assert main(["trace", "critical-path", "--input", str(artifact)]) == 0
        assert "committed version" in capsys.readouterr().out

    def test_assert_passes_on_a_clean_run(self, capsys):
        assert main(["trace", "assert", "-n", "3"]) == 0
        assert "causal trace clean" in capsys.readouterr().out

    def test_assert_fails_on_a_fork_bug_counterexample(self, tmp_path, capsys):
        artifact = tmp_path / "fork.jsonl"
        main(
            [
                "check",
                "--protocol",
                "dynamic",
                "--updates",
                "1",
                "--depth",
                "8",
                "--inject-fork-bug",
                "--counterexample",
                str(artifact),
            ]
        )
        capsys.readouterr()
        assert main(["trace", "assert", "--input", str(artifact)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "install-within-participants" in captured.out
        assert "violated" in captured.err

    def test_legacy_trace_has_no_causal_lines(self, capsys):
        # Plain `repro trace` predates causal mode and must stay unchanged.
        assert main(["trace", "-n", "3", "--jsonl"]) == 0
        events = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert all(e["category"] != "causal" for e in events)


class TestArtifactCommand:
    def test_artifact_written(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "artifact.json"
        assert main(["artifact", "--output", str(path), "--n-max", "4"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        import json

        data = json.loads(path.read_text())
        assert set(data["theorem3"]) == {"3", "4"}


class TestProfileCommand:
    def test_profile_requires_a_profileable_target(self, capsys):
        assert main(["profile"]) == 2
        assert "simulate" in capsys.readouterr().err

    def test_profile_collapsed_stack_matches_the_span_forest(
        self, tmp_path, capsys
    ):
        from repro.obs import parse_collapsed, profiling

        # Ground truth: run the same deterministic invocation under a
        # profiler of our own; sim-time spans make both runs identical.
        with profiling() as profiler:
            assert main(["trace", "--protocol", "hybrid", "-n", "3"]) == 0
        capsys.readouterr()

        path = tmp_path / "trace.collapsed"
        code = main(
            ["profile", "--output", str(path),
             "trace", "--protocol", "hybrid", "-n", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sim-time spans (deterministic):" in out
        emitted = parse_collapsed(path.read_text())
        assert emitted == pytest.approx(profiler.stacks())
        assert sum(emitted.values()) == pytest.approx(profiler.total())

    def test_profile_rejects_unprofileable_targets(self, capsys):
        assert main(["profile", "lint", "src"]) == 2
        assert "simulate, compare, trace" in capsys.readouterr().err


class TestBenchCommands:
    def _run(self, tmp_path, seed="2026"):
        record = tmp_path / "run.json"
        history = tmp_path / "history.jsonl"
        trajectory = tmp_path / "BENCH_perf.json"
        code = main(
            ["bench", "run", "--suite", "perf", "--quick", "--seed", seed,
             "--record", str(record), "--history", str(history),
             "--trajectory", str(trajectory)]
        )
        assert code == 0
        return record, history, trajectory

    def test_bench_run_writes_record_history_and_trajectory(
        self, tmp_path, capsys
    ):
        record, history, trajectory = self._run(tmp_path)
        out = capsys.readouterr().out
        assert "mc.scalar.hybrid.n5" in out
        run_doc = json.loads(record.read_text())
        assert run_doc["schema"] == "repro.bench-run/1"
        scenarios = {r["scenario"] for r in run_doc["records"]}
        assert scenarios == {
            "mc.scalar.hybrid.n5",
            "mc.vectorized.hybrid.n5",
            "markov.grid.batched.n5",
            "markov.grid.horner.n5",
            "markov.lumped.n25",
            "markov.sparse.n25",
            "netsim.causal.overhead.n5",
        }
        assert all(r["git"] for r in run_doc["records"])
        assert len(history.read_text().splitlines()) == 7
        assert json.loads(trajectory.read_text())["schema"] == (
            "repro.bench-trajectory/1"
        )

    def test_bench_compare_against_itself_passes(self, tmp_path, capsys):
        record, _, _ = self._run(tmp_path)
        assert main(["bench", "compare", str(record), str(record)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_compare_detects_injected_2x_slowdown(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.cli as cli_module

        record, _, _ = self._run(tmp_path)
        capsys.readouterr()

        # Inject a 2x slowdown into the Monte-Carlo hot path: same
        # deterministic result, double the wall time.
        original = cli_module.estimate_availability

        def twice_as_slow(*args, **kwargs):
            original(*args, **kwargs)
            return original(*args, **kwargs)

        monkeypatch.setattr(cli_module, "estimate_availability", twice_as_slow)
        slow = tmp_path / "slow.json"
        assert main(
            ["bench", "run", "--quick", "--record", str(slow),
             "--history", "-", "--trajectory", "-"]
        ) == 0
        capsys.readouterr()
        code = main(
            ["bench", "compare", str(record), str(slow), "--tolerance", "0.3"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "HARD REGRESSION" in out
        assert "events_per_sec" in out

    def test_bench_report_renders_the_history(self, tmp_path, capsys):
        _, history, _ = self._run(tmp_path)
        capsys.readouterr()
        assert main(
            ["bench", "report", "--history", str(history), "--format", "md"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("| created_at |")
        assert "markov.grid.horner.n5" in out

    def test_bench_errors_exit_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        code = main(["bench", "compare", str(missing), str(missing)])
        assert code == 2
        assert "repro bench:" in capsys.readouterr().err


class TestGridCommand:
    def test_text_table(self, capsys):
        assert main([
            "grid", "--protocol", "dynamic", "-n", "25", "--points", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "dynamic n=25" in out
        assert "availability" in out

    def test_forced_sparse_reports_the_sparse_counter(self, capsys):
        assert main([
            "grid", "--protocol", "hybrid", "-n", "25", "--points", "4",
            "--solver", "sparse",
        ]) == 0
        out = capsys.readouterr().out
        assert "sparse=1" in out

    def test_json_output(self, capsys):
        assert main([
            "grid", "--protocol", "dynamic", "-n", "25", "--points", "3",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["protocol"] == "dynamic"
        assert payload["n_sites"] == 25
        assert len(payload["grid"]) == 3
        assert all(0 < row["availability"] < 1 for row in payload["grid"])

    def test_solvers_agree(self, capsys):
        curves = []
        for solver in ("dense", "sparse"):
            assert main([
                "grid", "--protocol", "dynamic", "-n", "25", "--points", "4",
                "--solver", solver, "--json",
            ]) == 0
            payload = json.loads(capsys.readouterr().out)
            curves.append([row["availability"] for row in payload["grid"]])
        assert max(
            abs(a - b) for a, b in zip(curves[0], curves[1])
        ) <= 1e-12

    def test_unknown_protocol_fails_cleanly(self, capsys):
        assert main([
            "grid", "--protocol", "nonesuch", "-n", "5", "--points", "2",
        ]) == 2
        assert "nonesuch" in capsys.readouterr().err

    def test_bad_range_rejected(self, capsys):
        assert main([
            "grid", "-n", "5", "--points", "2", "--start", "5", "--stop", "1",
        ]) == 2
