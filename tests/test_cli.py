"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.protocol == "hybrid"
        assert args.sites == 5


class TestCommands:
    def test_compare(self, capsys):
        assert main(["compare", "-n", "4", "-r", "1.0", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out and "voting" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "protocol: hybrid" in out
        assert "ACCEPT" in out

    def test_chain_dump(self, capsys):
        assert main(["chain", "--protocol", "hybrid", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "4 states" in out
        assert "(2, 3, 0)" in out

    def test_chain_dump_other_protocol(self, capsys):
        assert main(["chain", "--protocol", "dynamic", "-n", "3"]) == 0
        assert "states" in capsys.readouterr().out

    def test_crossover(self, capsys):
        assert main(["crossover", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "0.66" in out  # 0.665 bracket

    def test_figure(self, capsys):
        assert main(["figure", "3", "--steps", "4"]) == 0
        assert "mu/lambda" in capsys.readouterr().out

    def test_theorem3_small_range(self, capsys):
        assert main(["theorem3", "--n-min", "3", "--n-max", "4"]) == 0
        out = capsys.readouterr().out
        assert "0.82" in out

    def test_simulate_agrees(self, capsys):
        code = main([
            "simulate", "--protocol", "voting", "-n", "3",
            "-r", "1.0", "--events", "4000", "--replicates", "4",
        ])
        assert code == 0
        assert "analytic" in capsys.readouterr().out

    def test_proof(self, capsys):
        assert main(["proof", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "Descartes" in out
        assert "0.82" in out

    def test_transient(self, capsys):
        assert main(["transient", "-n", "4", "-r", "2.0", "-t", "0", "1", "5"]) == 0
        out = capsys.readouterr().out
        assert "mean time to first blocking" in out
        assert "1.0000" in out  # A(0) = 1


class TestLintCommand:
    def test_lint_json_smoke(self, tmp_path, capsys):
        import json

        snippet = tmp_path / "scratch.py"
        snippet.write_text("import random\n")
        code = main(["lint", str(snippet), "--no-baseline", "--json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["exit_code"] == 1
        assert any(f["rule"] == "REP001" for f in report["new"])

    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        snippet = tmp_path / "scratch.py"
        snippet.write_text('"""Nothing to see."""\n')
        assert main(["lint", str(snippet), "--no-baseline"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out


class TestArtifactCommand:
    def test_artifact_written(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "artifact.json"
        assert main(["artifact", "--output", str(path), "--n-max", "4"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        import json

        data = json.loads(path.read_text())
        assert set(data["theorem3"]) == {"3", "4"}
