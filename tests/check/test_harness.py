"""The schedule-controlled harness: determinism, replay, budgets."""

import pytest

from repro.check import CheckConfig, CheckHarness, CrashSite, RecoverSite, SubmitOp
from repro.errors import CheckError


def drive(harness, steps):
    """Apply the first enabled action ``steps`` times; return the schedule."""
    schedule = []
    for _ in range(steps):
        actions = harness.enabled_actions()
        if not actions:
            break
        assert harness.apply(actions[0])
        schedule.append(actions[0])
    return schedule


class TestConfig:
    def test_workload_is_deterministic_round_robin(self):
        config = CheckConfig(protocol="dynamic", n_sites=3, updates=4)
        assert config.workload() == (
            ("A", "u1"),
            ("B", "u2"),
            ("C", "u3"),
            ("A", "u4"),
        )

    def test_invalid_site_count_rejected(self):
        with pytest.raises(CheckError):
            CheckConfig(protocol="dynamic", n_sites=1)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(CheckError):
            CheckConfig(protocol="no-such-protocol")


class TestDeterminism:
    def test_reset_reproduces_the_initial_snapshot(self):
        harness = CheckHarness(CheckConfig(protocol="dynamic", n_sites=3))
        first = harness.snapshot()
        drive(harness, 5)
        harness.reset()
        assert harness.snapshot() == first

    def test_replay_reaches_an_identical_snapshot(self):
        config = CheckConfig(protocol="dynamic", n_sites=3, updates=2)
        harness = CheckHarness(config)
        schedule = drive(harness, 7)
        end = harness.snapshot()
        harness.replay(schedule)
        assert harness.snapshot() == end
        assert harness.snapshot().digest() == end.digest()

    def test_enabled_actions_order_is_stable(self):
        config = CheckConfig(protocol="dynamic", n_sites=3, updates=2)
        one, two = CheckHarness(config), CheckHarness(config)
        for _ in range(6):
            a, b = one.enabled_actions(), two.enabled_actions()
            assert a == b
            if not a:
                break
            assert one.apply(a[0]) and two.apply(b[0])


class TestApply:
    def test_non_enabled_action_is_rejected_not_crashed(self):
        harness = CheckHarness(CheckConfig(protocol="dynamic", n_sites=3))
        # No crash budget: CrashSite is never enabled.
        assert not harness.apply(CrashSite(site="A"))

    def test_submit_consumed_once(self):
        harness = CheckHarness(
            CheckConfig(protocol="dynamic", n_sites=3, updates=1)
        )
        op = SubmitOp(index=0, site="A")
        assert harness.apply(op)
        assert not harness.apply(op)

    def test_crash_and_recover_budgets(self):
        harness = CheckHarness(
            CheckConfig(
                protocol="dynamic", n_sites=3, crashes=1, recoveries=1
            )
        )
        assert harness.apply(CrashSite(site="B"))
        assert not harness.apply(CrashSite(site="C"))  # budget exhausted
        assert harness.apply(RecoverSite(site="B"))
        assert not harness.apply(RecoverSite(site="B"))
