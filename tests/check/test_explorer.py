"""The bounded explorer: deterministic counts, pruning, truncation."""

from repro.check import CheckConfig, Explorer


def explore(depth=8, **config_kwargs):
    config_kwargs.setdefault("protocol", "dynamic")
    config_kwargs.setdefault("n_sites", 3)
    config_kwargs.setdefault("updates", 1)
    return Explorer(config=CheckConfig(**config_kwargs), depth=depth).run()


class TestDeterministicCounts:
    def test_state_and_transition_counts_are_pinned(self):
        # These exact numbers are the determinism contract: any change to
        # the harness, the action alphabet, or the pruning machinery that
        # shifts them is a semantic change and must be reviewed as such.
        result = explore()
        assert result.ok
        assert result.violation is None
        assert (result.states, result.transitions) == (384, 506)

    def test_rerun_is_bit_identical(self):
        first, second = explore(), explore()
        assert first.to_dict() == second.to_dict()

    def test_voting_and_dynamic_agree_without_faults(self):
        # With no crashes or partitions the two protocols make identical
        # quorum decisions, so the reachable graphs coincide.
        dynamic = explore()
        voting = explore(protocol="voting")
        assert (voting.states, voting.transitions) == (
            dynamic.states,
            dynamic.transitions,
        )


class TestPruning:
    def test_sleep_sets_and_cache_both_fire(self):
        result = explore(updates=2, depth=6)
        assert result.sleep_pruned > 0
        assert result.cache_pruned > 0

    def test_depth_bound_cuts_the_frontier(self):
        shallow = explore(depth=4)
        assert shallow.frontier_cutoffs > 0
        assert shallow.states < explore().states


class TestTruncation:
    def test_max_states_flags_the_run(self):
        result = Explorer(
            config=CheckConfig(protocol="dynamic", n_sites=3, updates=1),
            depth=8,
            max_states=50,
        ).run()
        assert result.truncated
        assert not result.ok
        assert result.states <= 51

    def test_faulty_configs_still_terminate(self):
        result = explore(crashes=1, depth=6)
        assert result.violation is None
        assert result.states > 0
