"""Regression: the checker rediscovers the PR-1 fork bug on demand.

The original coordinator applied a committed update at every up site,
including sites outside the durably-logged participant set P(run) --
the fork scenario of Section III.  The fix is the participants guard in
``Node._on_decision_reply``; ``CheckConfig.disable_participants_guard``
(a test-only switch) re-opens the hole so this test can prove the
checker would have caught it: a mutual-exclusion counterexample at n=3
within the quick preset's depth bound, minimized and replayable.
"""

from repro.check import Deliver, SubmitOp, minimize, replay_schedule, schedule_to_jsonl
from repro.check.explorer import Explorer
from repro.check.oracles import default_oracle_names
from repro.check.runner import QUICK_DEPTH, quick_config


def test_fork_bug_found_within_quick_depth():
    config = quick_config("dynamic", inject_fork_bug=True)
    result = Explorer(config=config, depth=QUICK_DEPTH).run()
    assert result.violation is not None, (
        "the seeded fork bug escaped the quick-preset exploration"
    )
    assert result.violation.oracle == "participants-only"

    schedule, violation = minimize(
        config, result.schedule, default_oracle_names()
    )
    # The minimal trace: one submission, then the delivery/timer race
    # that commits in a two-site quorum yet installs at the third site.
    assert len(schedule) <= QUICK_DEPTH
    assert isinstance(schedule[0], SubmitOp)
    assert any(
        isinstance(action, Deliver)
        and action.message_type == "DecisionReply"
        for action in schedule
    )

    document = schedule_to_jsonl(schedule, violation, config)
    replayed, replayed_config = replay_schedule(document)
    assert replayed is not None
    assert replayed.oracle == "participants-only"
    assert replayed_config.disable_participants_guard


def test_guard_in_place_is_clean_at_the_same_depth():
    # Sanity half of the regression: with the real guard, the identical
    # exploration finds nothing (otherwise the test above proves little).
    config = quick_config("dynamic")
    result = Explorer(
        config=config, depth=8, oracles=("participants-only",)
    ).run()
    assert result.violation is None
