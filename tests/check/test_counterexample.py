"""Counterexample minimization and the replayable JSONL format."""

import pytest

from repro.check import (
    CheckConfig,
    Explorer,
    load_schedule,
    minimize,
    replay_schedule,
    run_schedule,
    schedule_to_jsonl,
)
from repro.check.harness import CheckHarness
from repro.check.oracles import default_oracle_names
from repro.errors import CheckError

FORK_CONFIG = CheckConfig(
    protocol="dynamic",
    n_sites=3,
    updates=1,
    disable_participants_guard=True,
)


@pytest.fixture(scope="module")
def fork_result():
    result = Explorer(config=FORK_CONFIG, depth=8).run()
    assert result.violation is not None
    return result


class TestMinimize:
    def test_minimized_schedule_still_reproduces(self, fork_result):
        schedule, violation = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        assert violation.oracle == "participants-only"
        assert len(schedule) <= len(fork_result.schedule)
        harness = CheckHarness(FORK_CONFIG)
        assert (
            run_schedule(harness, schedule, default_oracle_names())
            is not None
        )

    def test_minimized_schedule_is_one_minimal(self, fork_result):
        schedule, _ = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        harness = CheckHarness(FORK_CONFIG)
        for drop in range(len(schedule)):
            shorter = schedule[:drop] + schedule[drop + 1 :]
            assert (
                run_schedule(harness, shorter, default_oracle_names())
                is None
            ), f"dropping step {drop} still reproduces"

    def test_non_reproducing_input_rejected(self):
        with pytest.raises(CheckError):
            minimize(FORK_CONFIG, (), default_oracle_names())


class TestJsonlRoundTrip:
    def test_serialize_load_replay(self, fork_result):
        schedule, violation = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        document = schedule_to_jsonl(schedule, violation, FORK_CONFIG)
        config, actions, loaded_violation = load_schedule(document)
        assert config == FORK_CONFIG
        assert tuple(actions) == tuple(schedule)
        assert loaded_violation == violation
        replayed, replay_config = replay_schedule(document)
        assert replay_config == FORK_CONFIG
        assert replayed is not None
        assert replayed.oracle == violation.oracle

    def test_document_is_valid_jsonl(self, fork_result):
        import json

        schedule, violation = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        document = schedule_to_jsonl(schedule, violation, FORK_CONFIG)
        lines = [line for line in document.splitlines() if line]
        records = [json.loads(line) for line in lines]
        checks = [r for r in records if r["category"] == "check"]
        assert len(checks) == len(schedule) + 2  # config + actions + verdict
        # The rest is the causal DAG of the replayed schedule -- the
        # shared format `repro trace assert` consumes.
        assert all(r["category"] in ("check", "causal") for r in records)
        assert any(r["category"] == "causal" for r in records)


class TestCausalExport:
    def test_counterexample_carries_a_causal_dag(self, fork_result):
        from repro.obs.query import CausalDag, check_assertions

        schedule, violation = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        document = schedule_to_jsonl(schedule, violation, FORK_CONFIG)
        dag = CausalDag.from_jsonl(document)
        assert dag.events, "counterexample export lost its causal layer"
        failures = check_assertions(dag)
        # The fork bug IS a causal-assertion violation: a site outside the
        # deciding partition P installs the committed version.
        assert any(
            f.assertion == "install-within-participants" for f in failures
        ), [f.describe() for f in failures]

    def test_causal_layer_does_not_disturb_replay(self, fork_result):
        schedule, violation = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        document = schedule_to_jsonl(schedule, violation, FORK_CONFIG)
        config, actions, loaded = load_schedule(document)
        assert config == FORK_CONFIG
        assert tuple(actions) == tuple(schedule)
        assert loaded == violation

    def test_causal_harness_matches_plain_snapshots(self):
        # Tracing must be invisible to state fingerprints: the stamped ctx
        # is excluded from message keys, so a causal-enabled harness walks
        # the exact same canonical state space.
        plain = CheckHarness(FORK_CONFIG)
        traced = CheckHarness(FORK_CONFIG, causal=True)
        assert traced.cluster.causal.enabled
        assert plain.snapshot() == traced.snapshot()
        for harness in (plain, traced):
            harness.reset()
            for action in harness.enabled_actions()[:1]:
                assert harness.apply(action)
        assert plain.snapshot() == traced.snapshot()
