"""Counterexample minimization and the replayable JSONL format."""

import pytest

from repro.check import (
    CheckConfig,
    Explorer,
    load_schedule,
    minimize,
    replay_schedule,
    run_schedule,
    schedule_to_jsonl,
)
from repro.check.harness import CheckHarness
from repro.check.oracles import default_oracle_names
from repro.errors import CheckError

FORK_CONFIG = CheckConfig(
    protocol="dynamic",
    n_sites=3,
    updates=1,
    disable_participants_guard=True,
)


@pytest.fixture(scope="module")
def fork_result():
    result = Explorer(config=FORK_CONFIG, depth=8).run()
    assert result.violation is not None
    return result


class TestMinimize:
    def test_minimized_schedule_still_reproduces(self, fork_result):
        schedule, violation = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        assert violation.oracle == "participants-only"
        assert len(schedule) <= len(fork_result.schedule)
        harness = CheckHarness(FORK_CONFIG)
        assert (
            run_schedule(harness, schedule, default_oracle_names())
            is not None
        )

    def test_minimized_schedule_is_one_minimal(self, fork_result):
        schedule, _ = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        harness = CheckHarness(FORK_CONFIG)
        for drop in range(len(schedule)):
            shorter = schedule[:drop] + schedule[drop + 1 :]
            assert (
                run_schedule(harness, shorter, default_oracle_names())
                is None
            ), f"dropping step {drop} still reproduces"

    def test_non_reproducing_input_rejected(self):
        with pytest.raises(CheckError):
            minimize(FORK_CONFIG, (), default_oracle_names())


class TestJsonlRoundTrip:
    def test_serialize_load_replay(self, fork_result):
        schedule, violation = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        document = schedule_to_jsonl(schedule, violation, FORK_CONFIG)
        config, actions, loaded_violation = load_schedule(document)
        assert config == FORK_CONFIG
        assert tuple(actions) == tuple(schedule)
        assert loaded_violation == violation
        replayed, replay_config = replay_schedule(document)
        assert replay_config == FORK_CONFIG
        assert replayed is not None
        assert replayed.oracle == violation.oracle

    def test_document_is_valid_jsonl(self, fork_result):
        import json

        schedule, violation = minimize(
            FORK_CONFIG, fork_result.schedule, default_oracle_names()
        )
        document = schedule_to_jsonl(schedule, violation, FORK_CONFIG)
        lines = [line for line in document.splitlines() if line]
        records = [json.loads(line) for line in lines]
        assert len(records) == len(schedule) + 2  # config + actions + verdict
        assert all(r["category"] == "check" for r in records)
