"""The invariant oracle catalog."""

import pytest

from repro.check import (
    CheckConfig,
    CheckHarness,
    Explorer,
    check_oracles,
    default_oracle_names,
)
from repro.check.oracles import ORACLES
from repro.errors import CheckError


class TestCatalog:
    def test_default_names_cover_the_catalog(self):
        assert set(default_oracle_names()) == set(ORACLES)
        assert "no-fork" in ORACLES
        assert "participants-only" in ORACLES

    def test_unknown_oracle_name_raises(self):
        harness = CheckHarness(CheckConfig(protocol="dynamic", n_sites=3))
        snapshot = harness.snapshot()
        with pytest.raises(CheckError):
            check_oracles(("no-such-oracle",), harness, snapshot, None)

    def test_initial_state_satisfies_every_oracle(self):
        harness = CheckHarness(CheckConfig(protocol="dynamic", n_sites=3))
        snapshot = harness.snapshot()
        violation = check_oracles(
            default_oracle_names(), harness, snapshot, None
        )
        assert violation is None


class TestForkDetection:
    def test_guard_disabled_violates_participants_only(self):
        result = Explorer(
            config=CheckConfig(
                protocol="dynamic",
                n_sites=3,
                updates=1,
                disable_participants_guard=True,
            ),
            depth=8,
        ).run()
        assert result.violation is not None
        assert result.violation.oracle == "participants-only"
        assert "excludes" in result.violation.detail

    def test_single_oracle_selection_respected(self):
        # With only vn-monotone selected, the seeded fork bug's
        # participants-only violation goes unnoticed.
        result = Explorer(
            config=CheckConfig(
                protocol="dynamic",
                n_sites=3,
                updates=1,
                disable_participants_guard=True,
            ),
            depth=8,
            oracles=("vn-monotone",),
        ).run()
        assert result.violation is None
