"""Property tests for the static quorum algebra (coteries, votes)."""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.quorums import (
    VoteAssignment,
    coterie_from_votes,
    majority_coterie,
)
from repro.types import site_names

SITES = site_names(5)

vote_tables = st.fixed_dictionaries(
    {site: st.integers(min_value=0, max_value=3) for site in SITES}
)

probabilities = st.fixed_dictionaries(
    {site: st.floats(min_value=0.05, max_value=0.95) for site in SITES}
)


@given(votes=vote_tables)
@settings(max_examples=80, deadline=None)
def test_vote_coteries_are_valid_coteries(votes):
    assume(sum(votes.values()) > 0)
    coterie = coterie_from_votes(SITES, votes)
    # Constructor validated intersection and minimality; double-check the
    # semantic contract: a set is a quorum iff it holds a vote majority or
    # contains such a set.
    total = sum(votes.values())
    import itertools

    for size in range(1, len(SITES) + 1):
        for combo in itertools.combinations(SITES, size):
            members = frozenset(combo)
            held = sum(votes[s] for s in members)
            assert coterie.is_quorum(members) == (2 * held > total)


@given(votes=vote_tables)
@settings(max_examples=60, deadline=None)
def test_two_disjoint_quorums_never_exist(votes):
    assume(sum(votes.values()) > 0)
    coterie = coterie_from_votes(SITES, votes)
    for g1 in coterie.groups:
        for g2 in coterie.groups:
            assert g1 & g2


@given(votes=vote_tables, table=probabilities)
@settings(max_examples=60, deadline=None)
def test_site_measure_never_exceeds_traditional(votes, table):
    assume(sum(votes.values()) > 0)
    assignment = VoteAssignment.weighted(SITES, votes)
    assert assignment.site_availability(table) <= assignment.availability(
        table
    ) + 1e-12


@given(votes=vote_tables, p=st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=60, deadline=None)
def test_availability_bounded_by_best_site(votes, p):
    assume(sum(votes.values()) > 0)
    assignment = VoteAssignment.weighted(SITES, votes)
    # With uniform p, no assignment's traditional availability beats the
    # probability that SOME site is up... trivially true; the sharp bound
    # for the site measure is p itself.
    assert assignment.site_availability(p) <= p + 1e-12


@given(
    extra=st.integers(min_value=0, max_value=3),
    p=st.floats(min_value=0.5, max_value=0.95),
)
@settings(max_examples=40, deadline=None)
def test_boosting_one_site_never_helps_reliable_uniform_sites(extra, p):
    """For homogeneous sites with p >= 1/2, symmetric votes are optimal.

    (The classical condition -- Garcia-Molina & Barbara.  Below p = 1/2
    the relation genuinely flips: concentrated assignments win, as a
    hypothesis run against the unrestricted property demonstrated.)
    """
    uniform = VoteAssignment.uniform(SITES)
    boosted = VoteAssignment.weighted(
        SITES, {**dict.fromkeys(SITES, 1), "A": 1 + extra}
    )
    assert boosted.site_availability(p) <= uniform.site_availability(p) + 1e-12


@given(extra=st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_concentration_wins_below_one_half(extra):
    """The flip side, pinned: at p = 0.25 a boosted site strictly helps."""
    uniform = VoteAssignment.uniform(SITES)
    boosted = VoteAssignment.weighted(
        SITES, {**dict.fromkeys(SITES, 1), "A": 1 + 2 * extra}
    )
    assert boosted.site_availability(0.25) > uniform.site_availability(0.25)
