"""Property tests for vote-ledger policies and the witness rule."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.reassignment import (
    POLICIES,
    GroupConsensus,
    LinearBonus,
    TrioFreeze,
    VoteLedger,
    VoteReassignmentProtocol,
    WitnessVotingProtocol,
)
from repro.types import site_names

SITES = site_names(6)

participant_sets = st.sets(
    st.sampled_from(SITES), min_size=1, max_size=len(SITES)
).map(frozenset)

ledgers = st.builds(
    lambda votes: VoteLedger.from_assignment(5, votes),
    st.fixed_dictionaries(
        {s: st.integers(min_value=0, max_value=2) for s in SITES}
    ).filter(lambda votes: sum(votes.values()) > 0),
)


@given(
    policy_name=st.sampled_from(sorted(POLICIES)),
    participants=participant_sets,
    previous=ledgers,
)
@settings(max_examples=100, deadline=None)
def test_reassignments_are_valid_assignments(policy_name, participants, previous):
    policy = POLICIES[policy_name]()
    greatest = max(participants)
    assignment = policy.reassign(participants, previous, greatest)
    if assignment is None:
        return  # keep: the previous (valid) ledger stays
    assert sum(assignment.values()) > 0
    assert all(v >= 0 for v in assignment.values())
    # Dynamic policies only empower participants.
    if policy_name != "keep":
        assert set(k for k, v in assignment.items() if v) <= set(participants)


@given(participants=participant_sets, previous=ledgers)
@settings(max_examples=80, deadline=None)
def test_linear_bonus_total_is_odd(participants, previous):
    """The +1 bonus makes every total odd: ties become impossible."""
    assignment = LinearBonus().reassign(participants, previous, max(participants))
    assert sum(assignment.values()) % 2 == 1


@given(participants=participant_sets, previous=ledgers)
@settings(max_examples=80, deadline=None)
def test_group_consensus_majority_equals_dynamic_rule(participants, previous):
    assignment = GroupConsensus().reassign(
        participants, previous, max(participants)
    )
    # One vote per participant: a majority of votes is a majority of
    # participants -- the dynamic voting rule.
    assert set(assignment) == set(participants)
    assert all(v == 1 for v in assignment.values())


@given(previous=ledgers, pair=st.sets(st.sampled_from(SITES), min_size=2, max_size=2))
@settings(max_examples=80, deadline=None)
def test_trio_freeze_keeps_only_unit_trios(previous, pair):
    policy = TrioFreeze()
    kept = policy.reassign(frozenset(pair), previous, max(pair)) is None
    is_unit_trio = len(previous.votes) == 3 and all(
        v == 1 for _, v in previous.votes
    )
    assert kept == is_unit_trio


@given(
    witnesses=st.sets(st.sampled_from(SITES), min_size=1, max_size=len(SITES) - 1),
    partition=participant_sets,
)
@settings(max_examples=80, deadline=None)
def test_witness_grants_imply_vote_grants(witnesses, partition):
    """The witness rule only ever removes quorums, never adds them."""
    plain = VoteReassignmentProtocol(SITES)
    with_witnesses = WitnessVotingProtocol(SITES, sorted(witnesses))
    copies_plain = dict.fromkeys(SITES, plain.initial_metadata())
    copies_witness = dict.fromkeys(SITES, with_witnesses.initial_metadata())
    granted_plain = plain.is_distinguished(partition, copies_plain).granted
    granted_witness = with_witnesses.is_distinguished(
        partition, copies_witness
    ).granted
    if granted_witness:
        assert granted_plain
