"""Property-based safety tests: the pessimistic guarantee under any history.

The defining property of every protocol in the family (Theorem 1): at any
instant, no two disjoint partitions can both be distinguished, and the
committed versions form a single linear chain.  Hypothesis drives random
partition histories through every protocol and checks both properties at
every step.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PROTOCOLS, ReplicatedFile, make_protocol
from repro.types import site_names

N_SITES = 5
SITES = site_names(N_SITES)
PROTOCOL_NAMES = sorted(PROTOCOLS)


def all_partitionings(sites):
    """All ways to split ``sites`` into disjoint nonempty groups + downs."""
    # We sample rather than enumerate: a partitioning is an assignment of
    # each site to a group label 0..n (label n means "down").
    return st.lists(
        st.integers(min_value=0, max_value=len(sites)),
        min_size=len(sites),
        max_size=len(sites),
    )


def groups_from_labels(labels):
    groups = {}
    for site, label in zip(SITES, labels):
        if label == len(SITES):
            continue  # down
        groups.setdefault(label, set()).add(site)
    return [frozenset(g) for g in groups.values()]


@given(
    protocol_name=st.sampled_from(PROTOCOL_NAMES),
    history=st.lists(all_partitionings(SITES), min_size=1, max_size=12),
)
@settings(max_examples=150, deadline=None)
def test_at_most_one_distinguished_partition_ever(protocol_name, history):
    protocol = make_protocol(protocol_name, SITES)
    copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
    for labels in history:
        groups = groups_from_labels(labels)
        granted = []
        for group in sorted(groups, key=sorted):
            outcome = protocol.attempt_update(group, copies)
            if outcome.accepted:
                granted.append((group, outcome.metadata))
        # Pessimism: at most one group per epoch may commit.
        assert len(granted) <= 1, (protocol_name, groups, granted)
        for group, metadata in granted:
            for site in group:
                copies[site] = metadata


@given(
    protocol_name=st.sampled_from(PROTOCOL_NAMES),
    history=st.lists(all_partitionings(SITES), min_size=1, max_size=12),
)
@settings(max_examples=100, deadline=None)
def test_committed_history_is_linear(protocol_name, history):
    protocol = make_protocol(protocol_name, SITES)
    file = ReplicatedFile(protocol, initial_value=0)
    for epoch, labels in enumerate(history):
        for group in sorted(groups_from_labels(labels), key=sorted):
            file.try_write(group, epoch)
    file.check_linear_history()


@given(
    protocol_name=st.sampled_from(PROTOCOL_NAMES),
    history=st.lists(all_partitionings(SITES), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_current_copies_share_metadata(protocol_name, history):
    """All sites at the maximum version always agree on (SC, DS)."""
    protocol = make_protocol(protocol_name, SITES)
    copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
    for labels in history:
        for group in sorted(groups_from_labels(labels), key=sorted):
            outcome = protocol.attempt_update(group, copies)
            if outcome.accepted:
                for site in group:
                    copies[site] = outcome.metadata
        top = max(m.version for m in copies.values())
        metas = {m for m in copies.values() if m.version == top}
        assert len(metas) == 1, (protocol_name, metas)


@given(
    protocol_name=st.sampled_from(PROTOCOL_NAMES),
    history=st.lists(all_partitionings(SITES), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_consecutive_quorums_intersect_in_a_current_copy(protocol_name, history):
    """Every accepted update reads the immediately preceding version."""
    protocol = make_protocol(protocol_name, SITES)
    copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
    last_version = 0
    for labels in history:
        for group in sorted(groups_from_labels(labels), key=sorted):
            outcome = protocol.attempt_update(group, copies)
            if outcome.accepted:
                assert outcome.decision.max_version == last_version
                assert outcome.metadata.version == last_version + 1
                last_version += 1
                for site in group:
                    copies[site] = outcome.metadata


@given(
    history=st.lists(all_partitionings(SITES), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_hybrid_static_phase_invariants(history):
    """Whenever SC = 3 under the hybrid protocol, DS lists exactly 3 sites."""
    protocol = make_protocol("hybrid", SITES)
    copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
    for labels in history:
        for group in sorted(groups_from_labels(labels), key=sorted):
            outcome = protocol.attempt_update(group, copies)
            if outcome.accepted:
                meta = outcome.metadata
                if meta.cardinality == 3:
                    assert len(meta.distinguished) == 3
                elif meta.cardinality % 2 == 0:
                    assert len(meta.distinguished) == 1
                    assert meta.distinguished[0] in group
                for site in group:
                    copies[site] = meta


@given(
    labels=all_partitionings(SITES),
    protocol_name=st.sampled_from(PROTOCOL_NAMES),
)
@settings(max_examples=100, deadline=None)
def test_decisions_are_deterministic_and_pure(labels, protocol_name):
    """Repeating is_distinguished never changes the answer or the copies."""
    protocol = make_protocol(protocol_name, SITES)
    copies = dict.fromkeys(protocol.sites, protocol.initial_metadata())
    for group in groups_from_labels(labels):
        before = dict(copies)
        first = protocol.is_distinguished(group, copies)
        second = protocol.is_distinguished(group, copies)
        assert first == second
        assert copies == before
