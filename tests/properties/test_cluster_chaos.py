"""Property-based fault injection against the message-level cluster.

Hypothesis generates arbitrary interleavings of site failures/repairs,
link cuts/heals, and update/read submissions; after every storm the
cluster must (a) never have forked its history, (b) release every lock
once partitions heal and coordinators answer, and (c) keep committing once
fully healed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicVotingProtocol, HybridProtocol
from repro.netsim import ReplicaCluster, RunStatus
from repro.types import site_names

SITES = site_names(4)
PAIRS = [
    (a, b) for i, a in enumerate(SITES) for b in SITES[i + 1:]
]

# An operation is a tagged tuple interpreted against current state.
operations = st.lists(
    st.tuples(
        st.sampled_from(["site", "link", "update", "read", "wait"]),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=25,
)


def apply_operations(cluster, ops):
    submitted = []
    for kind, index in ops:
        if kind == "site":
            site = SITES[index % len(SITES)]
            if cluster.topology.is_up(site):
                cluster.fail_site(site)
            else:
                cluster.repair_site(site)  # Make_Current included
        elif kind == "link":
            a, b = PAIRS[index % len(PAIRS)]
            if cluster.topology.link_is_up(a, b):
                cluster.fail_link(a, b)
            else:
                cluster.repair_link(a, b)
        elif kind == "update":
            site = SITES[index % len(SITES)]
            if cluster.topology.is_up(site):
                submitted.append(
                    cluster.submit_update(site, f"value-{len(submitted)}")
                )
        elif kind == "read":
            site = SITES[index % len(SITES)]
            if cluster.topology.is_up(site):
                submitted.append(cluster.submit_read(site))
        else:  # wait
            cluster.run_for(cluster.termination_timeout)
    return submitted


def heal(cluster):
    for site in SITES:
        if not cluster.topology.is_up(site):
            cluster.repair_site(site)
    for a, b in PAIRS:
        if not cluster.topology.link_is_up(a, b):
            cluster.repair_link(a, b)


@given(ops=operations, protocol_cls=st.sampled_from([HybridProtocol, DynamicVotingProtocol]))
@settings(max_examples=60, deadline=None)
def test_no_fork_and_full_recovery_after_chaos(ops, protocol_cls):
    cluster = ReplicaCluster(protocol_cls(SITES), initial_value="v0")
    apply_operations(cluster, ops)
    # Heal everything and let the dust settle.
    heal(cluster)
    cluster.settle()
    cluster.run_for(cluster.termination_timeout * 4)
    # (a) single linear history at all times.
    cluster.check_consistency()
    # (b) no lock is held once every run has terminated and every in-doubt
    # subordinate has had time to resolve.
    for site in SITES:
        assert cluster.node(site).locks.holder is None, site
    # (c) liveness: a fresh update commits on the healed cluster.
    follow_up = cluster.submit_update("A", "after-the-storm")
    cluster.settle()
    assert follow_up.status is RunStatus.COMMITTED
    cluster.check_consistency()


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_committed_reads_return_committed_values(ops):
    cluster = ReplicaCluster(HybridProtocol(SITES), initial_value="v0")
    submitted = apply_operations(cluster, ops)
    heal(cluster)
    cluster.settle()
    cluster.run_for(cluster.termination_timeout * 4)
    committed_values = {"v0"} | {
        run.value
        for run in submitted
        if run.status is RunStatus.COMMITTED and run.value is not None
    }
    for run in submitted:
        if run.status is RunStatus.COMPLETED:  # a read
            assert run.result in committed_values
