"""Property tests for the stochastic model and chain machinery."""

from fractions import Fraction

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PROTOCOLS, make_protocol
from repro.markov import ANALYTIC_PROTOCOLS, availability_exact, chain_for
from repro.sim import Rates, StochasticReplicaSystem
from repro.types import site_names

CHAINED = sorted(set(ANALYTIC_PROTOCOLS) - {"primary-site-voting", "primary-copy"})

ratios = st.fractions(min_value=Fraction(1, 10), max_value=Fraction(20), max_denominator=40)


@given(name=st.sampled_from(CHAINED), n=st.integers(3, 7), ratio=ratios)
@settings(max_examples=60, deadline=None)
def test_exact_steady_state_is_a_distribution(name, n, ratio):
    chain = chain_for(name, n)
    pi = chain.steady_state_exact(ratio)
    assert sum(pi.values()) == 1
    assert all(p > 0 for p in pi.values())  # irreducible => strictly positive


@given(name=st.sampled_from(CHAINED), n=st.integers(3, 7), ratio=ratios)
@settings(max_examples=60, deadline=None)
def test_availability_within_bounds(name, n, ratio):
    value = availability_exact(name, n, ratio)
    up = ratio / (1 + ratio)
    assert 0 < value <= up


@given(
    name=st.sampled_from(CHAINED),
    n=st.integers(3, 6),
    lo=ratios,
    hi=ratios,
)
@settings(max_examples=40, deadline=None)
def test_availability_monotone_in_ratio(name, n, lo, hi):
    if lo == hi:
        return
    lo, hi = min(lo, hi), max(lo, hi)
    assert availability_exact(name, n, lo) <= availability_exact(name, n, hi)


@given(n=st.integers(3, 10), ratio=ratios)
@settings(max_examples=50, deadline=None)
def test_theorem2_hybrid_dominates_dynamic_exactly(n, ratio):
    assert availability_exact("hybrid", n, ratio) > availability_exact(
        "dynamic", n, ratio
    )


@given(n=st.integers(3, 8), ratio=ratios)
@settings(max_examples=40, deadline=None)
def test_dynamic_linear_dominates_dynamic_exactly(n, ratio):
    # Dynamic-linear strictly extends dynamic voting's quorums, and under
    # the chain model that is a strict availability improvement.
    assert availability_exact("dynamic-linear", n, ratio) > availability_exact(
        "dynamic", n, ratio
    )


@given(
    name=st.sampled_from(sorted(PROTOCOLS)),
    seed=st.integers(0, 10_000),
    events=st.integers(1, 60),
)
@settings(max_examples=60, deadline=None)
def test_model_runs_never_corrupt_metadata(name, seed, events):
    """Random short runs: every intermediate state is internally coherent."""
    protocol = make_protocol(name, site_names(4))
    system = StochasticReplicaSystem(
        protocol, Rates.from_ratio(1.0), random.Random(seed)
    )
    for _ in range(events):
        system.step()
        top = max(m.version for m in system.copies.values())
        holders = {s for s, m in system.copies.items() if m.version == top}
        metas = {system.copies[s] for s in holders}
        assert len(metas) == 1
        if system.available:
            # The up set just committed: all up sites share the top version.
            assert holders >= system.up
