"""Unit tests for the heterogeneous-rate analysis."""

import random

import pytest

from repro.core import make_protocol
from repro.errors import ChainError
from repro.markov import availability, heterogeneous_availability
from repro.sim import (
    AvailabilityAccumulator,
    FailureRepairSampler,
    PerSiteRates,
    Rates,
    StochasticReplicaSystem,
)
from repro.types import site_names


def uniform(sites, value):
    return dict.fromkeys(sites, value)


class TestReductionToHomogeneous:
    @pytest.mark.parametrize("name", ["voting", "dynamic", "dynamic-linear", "hybrid"])
    def test_uniform_rates_match_the_chains(self, name):
        protocol = make_protocol(name, site_names(4))
        for ratio in (0.5, 2.0):
            value = heterogeneous_availability(
                protocol,
                uniform(protocol.sites, 1.0),
                uniform(protocol.sites, ratio),
            )
            assert value == pytest.approx(availability(name, 4, ratio), abs=1e-10)

    def test_scale_invariance(self):
        # Only the ratio matters: doubling both rates changes nothing.
        protocol = make_protocol("hybrid", site_names(4))
        a = heterogeneous_availability(
            protocol, uniform(protocol.sites, 1.0), uniform(protocol.sites, 2.0)
        )
        b = heterogeneous_availability(
            protocol, uniform(protocol.sites, 3.0), uniform(protocol.sites, 6.0)
        )
        assert a == pytest.approx(b, abs=1e-12)


class TestAsymmetry:
    def test_flaky_site_reduces_availability(self):
        protocol = make_protocol("hybrid", site_names(4))
        base = heterogeneous_availability(
            protocol, uniform(protocol.sites, 1.0), uniform(protocol.sites, 2.0)
        )
        flaky = heterogeneous_availability(
            protocol,
            dict(uniform(protocol.sites, 1.0), A=8.0),
            uniform(protocol.sites, 2.0),
        )
        assert flaky < base

    def test_fast_repair_site_increases_availability(self):
        protocol = make_protocol("dynamic", site_names(4))
        base = heterogeneous_availability(
            protocol, uniform(protocol.sites, 1.0), uniform(protocol.sites, 2.0)
        )
        golden = heterogeneous_availability(
            protocol,
            uniform(protocol.sites, 1.0),
            dict(uniform(protocol.sites, 2.0), A=10.0),
        )
        assert golden > base

    def test_missing_rates_rejected(self):
        protocol = make_protocol("hybrid", site_names(3))
        with pytest.raises(ChainError):
            heterogeneous_availability(protocol, {"A": 1.0}, {"A": 1.0})

    def test_nonpositive_rates_rejected(self):
        protocol = make_protocol("hybrid", site_names(3))
        with pytest.raises(ChainError):
            heterogeneous_availability(
                protocol,
                uniform(protocol.sites, 0.0),
                uniform(protocol.sites, 1.0),
            )

    def test_montecarlo_cross_check(self):
        # The site-labelled chain vs a heterogeneous simulation run.
        sites = site_names(3)
        protocol = make_protocol("dynamic", sites)
        fail = {"A": 2.0, "B": 1.0, "C": 1.0}
        repair = {"A": 2.0, "B": 3.0, "C": 3.0}
        analytic = heterogeneous_availability(protocol, fail, repair)
        per_site = PerSiteRates(fail, repair)
        system = StochasticReplicaSystem(protocol, per_site, random.Random(5))
        estimate = AvailabilityAccumulator(system).run(60_000)
        assert estimate == pytest.approx(analytic, abs=0.02)


class TestPerSiteRates:
    def test_homogeneous_constructor(self):
        rates = PerSiteRates.homogeneous(site_names(2), Rates(1.0, 3.0))
        assert rates.failure == {"A": 1.0, "B": 1.0}
        assert rates.up_probability("A") == 0.75

    def test_sampler_respects_per_site_rates(self):
        # With an enormous failure rate at A, A is down most of the time.
        rates = PerSiteRates(
            {"A": 50.0, "B": 1.0}, {"A": 1.0, "B": 1.0}
        )
        sampler = FailureRepairSampler(site_names(2), rates, random.Random(3))
        down_a = 0.0
        last = 0.0
        for _ in range(20_000):
            a_up = "A" in sampler.up
            event = sampler.next_event()
            if not a_up:
                down_a += event.time - last
            last = event.time
        # P(A down) should be about 50/51.
        assert down_a / last == pytest.approx(50 / 51, abs=0.03)
