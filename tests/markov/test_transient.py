"""Tests for the transient (finite-horizon) chain analysis."""

import pytest

from repro.errors import ChainError
from repro.markov import (
    availability,
    chain_for,
    expected_blocked_fraction,
    mean_time_to_blocking,
    transient_availability,
    up_probability,
)


class TestTransientAvailability:
    def test_starts_at_one(self):
        chain = chain_for("hybrid", 5)
        assert transient_availability(chain, 1.0, [0.0]) == [1.0]

    def test_converges_to_steady_state(self):
        chain = chain_for("dynamic", 5)
        (value,) = transient_availability(chain, 1.0, [200.0])
        assert value == pytest.approx(availability("dynamic", 5, 1.0), abs=1e-9)

    def test_monotone_decay_from_healthy_start(self):
        chain = chain_for("hybrid", 5)
        values = transient_availability(chain, 1.0, [0.0, 0.5, 1.0, 2.0, 5.0])
        assert values == sorted(values, reverse=True)

    def test_negative_time_rejected(self):
        chain = chain_for("voting", 3)
        with pytest.raises(ChainError):
            transient_availability(chain, 1.0, [-1.0])

    def test_nonpositive_ratio_rejected(self):
        chain = chain_for("voting", 3)
        with pytest.raises(ChainError):
            transient_availability(chain, 0.0, [1.0])


class TestMeanTimeToBlocking:
    def test_identical_ladders_for_hybrid_and_dynamic(self):
        # Until the first blocked state, the hybrid's available states form
        # the same birth-death ladder as dynamic voting's (A_2..A_n with
        # identical rates), so their first-passage times coincide exactly:
        # the hybrid's advantage is recovery, not endurance.
        for n in (4, 5, 8):
            for ratio in (0.5, 1.0, 3.0):
                assert mean_time_to_blocking(
                    chain_for("hybrid", n), ratio
                ) == pytest.approx(
                    mean_time_to_blocking(chain_for("dynamic", n), ratio),
                    rel=1e-9,
                )

    def test_dynamic_linear_endures_longest(self):
        for ratio in (0.5, 1.0, 2.0):
            linear = mean_time_to_blocking(chain_for("dynamic-linear", 5), ratio)
            hybrid = mean_time_to_blocking(chain_for("hybrid", 5), ratio)
            voting = mean_time_to_blocking(chain_for("voting", 5), ratio)
            assert linear > hybrid > voting

    def test_longer_with_faster_repairs(self):
        chain = chain_for("hybrid", 5)
        assert mean_time_to_blocking(chain, 5.0) > mean_time_to_blocking(chain, 0.5)

    def test_single_site_closed_form(self):
        # voting over 1 site: available until the site fails: MTTB = 1/lam.
        chain = chain_for("voting", 1)
        assert mean_time_to_blocking(chain, 1.0) == pytest.approx(1.0)


class TestBlockedFraction:
    def test_complement_of_traditional_availability(self):
        # For voting the traditional measure has a closed binomial form.
        from repro.quorums import majority_availability, uniform_up_probability

        chain = chain_for("voting", 5)
        for ratio in (0.5, 2.0):
            blocked = expected_blocked_fraction(chain, ratio)
            traditional = majority_availability(
                5, uniform_up_probability(ratio), measure="traditional"
            )
            assert blocked == pytest.approx(1.0 - traditional, abs=1e-9)

    def test_hybrid_blocks_less_than_dynamic(self):
        for ratio in (0.5, 1.0, 3.0):
            assert expected_blocked_fraction(
                chain_for("hybrid", 5), ratio
            ) < expected_blocked_fraction(chain_for("dynamic", 5), ratio)

    def test_blocked_plus_site_measure_bounds(self):
        # site availability <= 1 - blocked fraction (being unblocked is
        # necessary but the arrival site must also be up).
        chain = chain_for("hybrid", 5)
        for ratio in (0.5, 2.0):
            assert availability("hybrid", 5, ratio) <= 1 - expected_blocked_fraction(
                chain, ratio
            ) + 1e-12
