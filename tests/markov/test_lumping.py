"""Tests for exact lumping: the derived chains ARE the paper's chains."""

from fractions import Fraction

import pytest

from repro.core import make_protocol
from repro.errors import ChainError
from repro.markov import (
    Arc,
    ChainSpec,
    derive_chain,
    dynamic_chain,
    dynamic_linear_chain,
    dynamic_linear_signature,
    dynamic_signature,
    hybrid_chain,
    hybrid_signature,
    lump_chain,
    voting_chain,
    voting_signature,
)
from repro.types import site_names

CASES = [
    ("hybrid", hybrid_signature, hybrid_chain),
    ("dynamic", dynamic_signature, dynamic_chain),
    ("dynamic-linear", dynamic_linear_signature, dynamic_linear_chain),
    ("voting", voting_signature, voting_chain),
]


def assert_same_chain(lumped: ChainSpec, hand: ChainSpec) -> None:
    assert set(lumped.states) == set(hand.states)
    for source in hand.states:
        assert lumped.weight(source) == hand.weight(source)
        for target in hand.states:
            if source == target:
                continue
            assert lumped.rate(source, target) == hand.rate(source, target), (
                source,
                target,
            )


class TestPaperChainsAreLumpings:
    @pytest.mark.parametrize("name,signature,builder", CASES)
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_derived_chain_lumps_exactly(self, name, signature, builder, n):
        derived = derive_chain(make_protocol(name, site_names(n)))
        lumped = lump_chain(derived, signature)
        assert_same_chain(lumped, builder(n))

    def test_hybrid_fig2_at_n6(self):
        derived = derive_chain(make_protocol("hybrid", site_names(6)))
        lumped = lump_chain(derived, hybrid_signature)
        assert lumped.size == 3 * 6 - 5
        assert_same_chain(lumped, hybrid_chain(6))


class TestLumpabilityChecking:
    def two_state_pair(self):
        """Two parallel two-state chains with different rates."""
        return ChainSpec(
            "pair",
            ["a1", "a2", "b1", "b2"],
            [
                Arc("a1", "b1", failures=1),
                Arc("b1", "a1", repairs=1),
                Arc("a2", "b2", failures=2),  # different failure rate
                Arc("b2", "a2", repairs=1),
                # weak coupling so the chain is irreducible:
                Arc("a1", "a2", repairs=1),
                Arc("a2", "a1", repairs=1),
            ],
            {"a1": Fraction(1), "a2": Fraction(1)},
        )

    def test_non_lumpable_partition_rejected(self):
        spec = self.two_state_pair()
        with pytest.raises(ChainError, match="not strongly lumpable"):
            lump_chain(spec, lambda s: s[0])  # blocks {a1,a2}, {b1,b2}

    def test_weight_disagreement_rejected(self):
        spec = ChainSpec(
            "w",
            ["a1", "a2", "b"],
            [
                Arc("a1", "b", failures=1),
                Arc("b", "a1", repairs=1),
                Arc("a2", "b", failures=1),
                Arc("b", "a2", repairs=1),
                Arc("a1", "a2", repairs=1),
                Arc("a2", "a1", repairs=1),
            ],
            {"a1": Fraction(1), "a2": Fraction(1, 2)},
        )
        with pytest.raises(ChainError, match="weight"):
            lump_chain(spec, lambda s: s[0])

    def test_identity_signature_is_a_noop(self):
        hand = dynamic_chain(4)
        relumped = lump_chain(hand, lambda s: s)
        assert_same_chain(relumped, hand)

    def test_lumped_chain_preserves_availability(self):
        derived = derive_chain(make_protocol("hybrid", site_names(5)))
        lumped = lump_chain(derived, hybrid_signature)
        for ratio in (0.5, 1.0, 3.0):
            assert lumped.availability(ratio) == pytest.approx(
                derived.availability(ratio), abs=1e-12
            )

    def test_internal_moves_vanish(self):
        # Lumping the voting chain by parity of up-count must fail (not
        # lumpable), demonstrating the checker is doing real work.
        with pytest.raises(ChainError):
            lump_chain(voting_chain(5), lambda s: s[1] % 2)
