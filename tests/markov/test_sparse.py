"""The sparse steady-state backend: parity, routing, and guards.

docs/PERFORMANCE.md "Large-n solvers" contract: the sparse path agrees
with the dense stacked solve to near machine precision on every
registered protocol, ``solver="auto"`` routes by size, forcing dense
past the threshold is reported once, and nothing ever materializes a
dense matrix past the hard limit.
"""

from fractions import Fraction

import pytest

from repro.errors import ChainError
from repro.markov import (
    CHAIN_BUILDERS,
    SPARSE_THRESHOLD,
    chain_for,
    sparse_steady_state,
    sparse_steady_state_grid,
)
from repro.markov.ctmc import _DENSE_MATERIALIZE_LIMIT, ChainSpec
from repro.obs.metrics import MetricsRegistry, use

GRID = [0.1 * i for i in range(1, 41)]
#: Pinned agreement between the two float factorizations (LAPACK dense
#: vs SuperLU sparse); observed worst-case is ~1e-15 at n=7.
PARITY_ATOL = 1e-12


def birth_death_chain(size: int) -> ChainSpec:
    """A size-state birth-death chain, handy for crossing the threshold."""
    arcs = {}
    for i in range(size - 1):
        arcs[(i, i + 1)] = (1, 0)
        arcs[(i + 1, i)] = (0, 1)
    weights = {0: Fraction(1)}
    return ChainSpec.from_indexed_arcs(
        f"birth-death[{size}]", range(size), arcs, weights
    )


class TestSparseDenseParity:
    @pytest.mark.parametrize("protocol", sorted(CHAIN_BUILDERS))
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_steady_state_matches_dense(self, protocol, n):
        chain = chain_for(protocol, n)
        for ratio in (0.25, 1.0, 4.0):
            dense = chain.steady_state(ratio, solver="dense")
            sparse = chain.steady_state(ratio, solver="sparse")
            assert max(
                abs(dense[state] - sparse[state]) for state in chain.states
            ) <= PARITY_ATOL, (protocol, n, ratio)

    @pytest.mark.parametrize("protocol", sorted(CHAIN_BUILDERS))
    def test_grid_matches_dense(self, protocol):
        chain = chain_for(protocol, 5)
        dense = chain.steady_state_grid(GRID, solver="dense")
        sparse = chain.steady_state_grid(GRID, solver="sparse")
        assert abs(dense - sparse).max() <= PARITY_ATOL

    def test_gmres_matches_direct(self):
        chain = chain_for("hybrid", 7)
        direct = sparse_steady_state_grid(chain, GRID, method="direct")
        gmres = sparse_steady_state_grid(chain, GRID, method="gmres")
        assert abs(direct - gmres).max() <= 1e-9

    def test_availability_solver_knob(self):
        chain = chain_for("dynamic", 5)
        dense = chain.availability(2.0, solver="dense")
        sparse = chain.availability(2.0, solver="sparse")
        assert sparse == pytest.approx(dense, abs=PARITY_ATOL)

    def test_rows_are_distributions(self):
        chain = birth_death_chain(300)
        grid = sparse_steady_state_grid(chain, GRID)
        assert grid.shape == (len(GRID), 300)
        assert abs(grid.sum(axis=1) - 1.0).max() <= 1e-9
        assert grid.min() >= -1e-12


class TestAutoRouting:
    def test_small_chain_stays_dense(self):
        chain = chain_for("hybrid", 5)
        registry = MetricsRegistry()
        with use(registry):
            chain.steady_state(1.0)
        snapshot = registry.snapshot()
        assert "markov.solve.numeric" in snapshot
        assert "markov.solve.sparse" not in snapshot

    def test_large_chain_routes_sparse(self):
        chain = birth_death_chain(SPARSE_THRESHOLD + 1)
        registry = MetricsRegistry()
        with use(registry):
            chain.steady_state(1.0)
        snapshot = registry.snapshot()
        assert snapshot["markov.solve.sparse"]["value"] == 1
        assert "markov.solve.numeric" not in snapshot

    def test_large_grid_routes_sparse(self):
        # Far below the size threshold, but the grid budget
        # (points x size^2 dense cells) still tips auto to sparse.
        chain = birth_death_chain(100)
        points = [1.0] * 900
        registry = MetricsRegistry()
        with use(registry):
            chain.steady_state_grid(points)
        assert registry.snapshot()["markov.solve.sparse"]["value"] == 1

    def test_unknown_solver_rejected(self):
        chain = chain_for("voting", 3)
        with pytest.raises(ChainError, match="unknown solver"):
            chain.steady_state(1.0, solver="cholesky")

    def test_unknown_sparse_method_rejected(self):
        chain = chain_for("voting", 3)
        with pytest.raises(ChainError, match="unknown sparse method"):
            sparse_steady_state(chain, 1.0, method="jacobi")


class TestDenseGuards:
    def test_forced_dense_past_threshold_reported_once(self):
        chain = birth_death_chain(SPARSE_THRESHOLD + 1)
        registry = MetricsRegistry()
        with use(registry):
            chain.steady_state(1.0, solver="dense")
            chain.steady_state(2.0, solver="dense")
        assert registry.snapshot()["markov.solve.dense_oversize"]["value"] == 1

    def test_forced_dense_past_materialize_limit_raises(self):
        chain = birth_death_chain(_DENSE_MATERIALIZE_LIMIT + 1)
        with pytest.raises(ChainError, match="dense"):
            chain.steady_state(1.0, solver="dense")
        # ... but auto and sparse still solve it.
        pi = chain.steady_state(1.0)
        assert sum(pi.values()) == pytest.approx(1.0, abs=1e-9)

    def test_generator_matrix_guarded(self):
        chain = birth_death_chain(_DENSE_MATERIALIZE_LIMIT + 1)
        with pytest.raises(ChainError, match="generator"):
            chain.generator_matrix(1.0, 1.0)

    def test_generator_matrix_small_still_works(self):
        chain = chain_for("voting", 3)
        q = chain.generator_matrix(1.0, 2.0)
        assert q.shape == (chain.size, chain.size)
        assert abs(q.sum(axis=1)).max() <= 1e-12
