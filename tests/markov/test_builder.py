"""Tests for the automatic chain derivation (the chain-vs-code validator)."""

import pytest

from repro.core import make_protocol
from repro.errors import ChainError
from repro.markov import (
    availability,
    derive_chain,
    verify_stale_partitions_blocked,
)
from repro.types import site_names

CHAINED = ("voting", "dynamic", "dynamic-linear", "hybrid", "optimal-candidate")


class TestDerivedChains:
    @pytest.mark.parametrize("name", CHAINED)
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_derived_availability_matches_hand_built(self, name, n):
        derived = derive_chain(make_protocol(name, site_names(n)))
        for ratio in (0.4, 1.0, 2.5):
            assert derived.availability(ratio) == pytest.approx(
                availability(name, n, ratio), abs=1e-12
            )

    def test_modified_hybrid_matches_hybrid_chain(self):
        # The Section VII equivalence, mechanically: the modified hybrid's
        # derived chain has the hybrid chain's availability.
        for n in (3, 4, 5):
            derived = derive_chain(make_protocol("modified-hybrid", site_names(n)))
            for ratio in (0.5, 1.0, 3.0):
                assert derived.availability(ratio) == pytest.approx(
                    availability("hybrid", n, ratio), abs=1e-12
                )

    def test_derived_chain_is_exact_not_lumped(self):
        derived = derive_chain(make_protocol("hybrid", site_names(4)))
        hand = 3 * 4 - 5
        assert derived.size > hand  # site-labelled, so bigger

    def test_initial_configuration_is_available(self):
        derived = derive_chain(make_protocol("dynamic", site_names(3)))
        up_all = frozenset(site_names(3))
        available = [
            s for s in derived.states if s[0] == up_all and s[1] == up_all
        ]
        assert len(available) == 1
        assert derived.weight(available[0]) == 1

    def test_state_cap_enforced(self):
        with pytest.raises(ChainError):
            derive_chain(make_protocol("hybrid", site_names(5)), max_states=10)


class TestStaleInvariant:
    @pytest.mark.parametrize("name", CHAINED + ("modified-hybrid",))
    def test_stale_only_partitions_always_deny(self, name):
        protocol = make_protocol(name, site_names(4))
        verify_stale_partitions_blocked(protocol)

    def test_randomised_full_history_check(self):
        # Beyond the one-generation exhaustive check: run the real model
        # (full per-site metadata history) and assert an acceptance always
        # includes a holder of the globally newest version.
        import random

        from repro.sim import Rates, StochasticReplicaSystem

        for name in CHAINED:
            system = StochasticReplicaSystem(
                make_protocol(name, site_names(5)),
                Rates.from_ratio(0.8),
                random.Random(99),
            )
            for _ in range(2_000):
                newest = max(m.version for m in system.copies.values())
                holders = {
                    s for s, m in system.copies.items() if m.version == newest
                }
                accepted_before = system.updates_accepted
                system.step()
                if system.updates_accepted > accepted_before:
                    assert system.up & holders, (
                        f"{name} accepted an update in a partition with no "
                        "current copy"
                    )
