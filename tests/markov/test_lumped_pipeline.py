"""The lump-then-solve pipeline: representative-BFS derivation, exactly.

:func:`derive_lumped_chain` builds the lumped chain directly from one
representative configuration per block, never expanding the 2^n
site-labelled space.  Soundness is pinned by equality against the
two-step reference (``lump_chain(derive_chain(...), signature)``) for
every registered signature, and the default ``availability`` pipeline
must be indistinguishable from the hand-built chains it replaced.
"""

from fractions import Fraction

import pytest

from repro.core import make_protocol
from repro.errors import ChainError
from repro.markov import (
    LUMP_SIGNATURES,
    availability,
    chain_for,
    class_signature,
    derive_chain,
    derive_lumped_chain,
    lump_chain,
    signature_for,
)
from repro.markov.availability import _chain
from repro.obs.metrics import MetricsRegistry, use
from repro.reassignment import (
    GroupConsensus,
    KeepVotes,
    WitnessVotingProtocol,
)
from repro.types import site_names

from .test_lumping import assert_same_chain


@pytest.fixture(autouse=True)
def _fresh_chain_cache():
    _chain.cache_clear()
    yield
    _chain.cache_clear()


class TestRepresentativeDerivation:
    @pytest.mark.parametrize("protocol", sorted(LUMP_SIGNATURES))
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_matches_lump_of_full_chain(self, protocol, n):
        """One-representative BFS == derive the 2^n chain, then lump it."""
        signature = LUMP_SIGNATURES[protocol]
        direct = derive_lumped_chain(
            make_protocol(protocol, site_names(n)), signature
        )
        reference = lump_chain(
            derive_chain(make_protocol(protocol, site_names(n))), signature
        )
        assert_same_chain(direct, reference)

    @pytest.mark.parametrize("witnesses", [1, 2])
    @pytest.mark.parametrize("policy", [KeepVotes, GroupConsensus])
    def test_class_signature_witness_chains(self, witnesses, policy):
        sites = site_names(5)
        witness_sites = sites[5 - witnesses:]
        classes = {
            site: ("witness" if site in witness_sites else "copy")
            for site in sites
        }
        signature = class_signature(classes)
        direct = derive_lumped_chain(
            WitnessVotingProtocol(sites, witness_sites, policy()), signature
        )
        reference = lump_chain(
            derive_chain(WitnessVotingProtocol(sites, witness_sites, policy())),
            signature,
        )
        assert_same_chain(direct, reference)

    def test_block_budget_enforced(self):
        with pytest.raises(ChainError, match="exceeds 3 blocks"):
            derive_lumped_chain(
                make_protocol("dynamic", site_names(5)),
                LUMP_SIGNATURES["dynamic"],
                max_blocks=3,
            )

    def test_custom_name(self):
        chain = derive_lumped_chain(
            make_protocol("voting", site_names(3)),
            LUMP_SIGNATURES["voting"],
            name="my-chain",
        )
        assert chain.name == "my-chain"

    def test_build_telemetry(self):
        registry = MetricsRegistry()
        with use(registry):
            chain = derive_lumped_chain(
                make_protocol("dynamic", site_names(4)),
                LUMP_SIGNATURES["dynamic"],
            )
        snapshot = registry.snapshot()
        assert snapshot["markov.build.lumped.chains"]["value"] == 1
        assert snapshot["markov.build.lumped.states"]["value"] == chain.size
        assert snapshot["markov.build.lumped.arcs"]["value"] > 0

    def test_site_labelled_telemetry(self):
        registry = MetricsRegistry()
        with use(registry):
            chain = derive_chain(make_protocol("voting", site_names(3)))
        snapshot = registry.snapshot()
        assert snapshot["markov.build.site_labelled.chains"]["value"] == 1
        assert snapshot["markov.build.site_labelled.states"]["value"] == chain.size


class TestDefaultPipeline:
    @pytest.mark.parametrize("protocol", sorted(LUMP_SIGNATURES))
    @pytest.mark.parametrize("n", [3, 5])
    def test_availability_matches_hand_built(self, protocol, n):
        """Lumped-vs-unlumped: the public value must not move."""
        hand = chain_for(protocol, n)
        for ratio in (0.3, 1.0, 2.0, 8.0):
            assert availability(protocol, n, ratio) == pytest.approx(
                hand.availability(ratio), abs=1e-12
            ), (protocol, n, ratio)

    @pytest.mark.parametrize("protocol", sorted(LUMP_SIGNATURES))
    def test_chain_is_lumped(self, protocol):
        chain = _chain(protocol, 5)
        assert chain.name == f"lumped:{protocol}[n=5]"

    def test_unsignatured_protocol_falls_through(self):
        chain = _chain("primary-site-voting", 5)
        assert signature_for("primary-site-voting") is None
        assert_same_chain(chain, chain_for("primary-site-voting", 5))

    def test_large_n_stays_small(self):
        chain = _chain("dynamic", 25)
        assert chain.size == 72  # vs 2^25+ site-labelled states
        pi = chain.steady_state(1.0)
        assert sum(pi.values()) == pytest.approx(1.0, abs=1e-9)

    def test_exact_arithmetic_through_lumped_chain(self):
        """Fraction elimination stays affordable and exact at n=25."""
        chain = _chain("dynamic", 25)
        exact = chain.availability_exact(Fraction(2))
        assert isinstance(exact, Fraction) and 0 < exact < 1
        assert availability("dynamic", 25, 2.0) == pytest.approx(
            float(exact), abs=1e-12
        )
