"""Unit tests for the hand-built protocol chains (Fig. 2 and kin)."""

from fractions import Fraction

import pytest

from repro.errors import ChainError
from repro.markov import (
    chain_for,
    dynamic_chain,
    dynamic_linear_chain,
    hybrid_chain,
    optimal_candidate_chain,
    primary_copy_availability,
    primary_site_voting_availability,
    state_tuple,
    voting_availability,
    voting_chain,
)


class TestHybridChain:
    def test_size_is_3n_minus_5(self):
        for n in range(3, 21):
            assert hybrid_chain(n).size == 3 * n - 5

    def test_papers_worked_balance_equation(self):
        # 2*mu*B[1] + 3*lambda*A[3] = ((n-2)*mu + 2*lambda)*A[2]
        n = 7
        chain = hybrid_chain(n)
        assert chain.rate(("B", 0), ("A", 2)) == (0, 2)
        assert chain.rate(("A", 3), ("A", 2)) == (3, 0)
        # Outflow of A_2: (n-2) repairs to A_3, 2 failures to B_0.
        assert chain.rate(("A", 2), ("A", 3)) == (0, n - 2)
        assert chain.rate(("A", 2), ("B", 0)) == (2, 0)

    def test_state_tuples_match_figure2(self):
        n = 5
        assert state_tuple(("A", 2), n) == (2, 3, 0)
        assert state_tuple(("A", 4), n) == (4, 4, 0)
        assert state_tuple(("B", 1), n) == (1, 3, 1)
        assert state_tuple(("C", 0), n) == (0, 3, 0)

    def test_unknown_state_tuple_rejected(self):
        with pytest.raises(ChainError):
            state_tuple(("Z", 1), 5)

    def test_needs_three_sites(self):
        with pytest.raises(ChainError):
            hybrid_chain(2)

    def test_top_row_weights(self):
        chain = hybrid_chain(5)
        assert chain.weight(("A", 2)) == Fraction(2, 5)
        assert chain.weight(("A", 5)) == Fraction(1)
        assert chain.weight(("B", 0)) == 0
        assert chain.weight(("C", 2)) == 0

    def test_middle_row_revival_rate_is_two(self):
        # Either of the two down trio members revives the quorum -- the
        # structural reason hybrid beats dynamic-linear (rate mu there).
        chain = hybrid_chain(6)
        for z in range(3):
            assert chain.rate(("B", z), ("A", z + 2)) == (0, 2)

    def test_bottom_row_has_three_repair_paths_to_middle(self):
        chain = hybrid_chain(6)
        assert chain.rate(("C", 1), ("B", 1)) == (0, 3)


class TestDynamicChain:
    def test_size(self):
        for n in (3, 5, 10):
            assert dynamic_chain(n).size == 3 * n - 3

    def test_blocked_revival_needs_the_pair_member(self):
        chain = dynamic_chain(5)
        assert chain.rate(("B", 0), ("A", 2)) == (0, 1)
        assert chain.rate(("C", 0), ("B", 0)) == (0, 2)

    def test_cardinality_floor_is_two(self):
        chain = dynamic_chain(5)
        assert ("A", 2) in chain.states
        assert ("A", 1) not in chain.states


class TestDynamicLinearChain:
    def test_size(self):
        for n in (3, 5, 10):
            assert dynamic_linear_chain(n).size == 4 * n - 2

    def test_cardinality_reaches_one(self):
        chain = dynamic_linear_chain(5)
        assert ("A", 1) in chain.states
        assert chain.weight(("A", 1)) == Fraction(1, 5)

    def test_a2_splits_on_which_member_fails(self):
        chain = dynamic_linear_chain(5)
        assert chain.rate(("A", 2), ("A", 1)) == (1, 0)
        assert chain.rate(("A", 2), ("B", 0)) == (1, 0)

    def test_both_pair_down_recovers_through_ds(self):
        chain = dynamic_linear_chain(5)
        assert chain.rate(("C", 1), ("A", 2)) == (0, 1)
        assert chain.rate(("C", 1), ("B", 1)) == (0, 1)


class TestOptimalChain:
    def test_blocked_band_is_half_the_sites(self):
        chain = optimal_candidate_chain(6)
        assert ("B", 2) in chain.states  # 1+2 = 3 = n/2: still blocked
        assert ("B", 3) not in chain.states

    def test_witness_escape_arc(self):
        chain = optimal_candidate_chain(5)
        # From (1,2,1) both exits land in A_3: the down pair member's
        # repair (1 path) and either outsider's repair completing a global
        # majority of three (2 paths) -- merged multiplicity 3*mu.
        assert chain.rate(("B", 1), ("A", 3)) == (0, 3)


class TestVoting:
    def test_chain_matches_closed_form(self):
        chain = voting_chain(5)
        for ratio in (Fraction(1, 2), Fraction(2), Fraction(10)):
            assert chain.availability_exact(ratio) == voting_availability(5, ratio)

    def test_closed_form_known_value(self):
        # n=1: availability = p = r/(1+r).
        assert voting_availability(1, Fraction(3)) == Fraction(3, 4)

    def test_primary_site_beats_plain_voting_for_even_n(self):
        for ratio in (Fraction(1), Fraction(4)):
            assert primary_site_voting_availability(4, ratio) > voting_availability(
                4, ratio
            )

    def test_primary_site_equals_voting_for_odd_n(self):
        assert primary_site_voting_availability(5, Fraction(2)) == voting_availability(
            5, Fraction(2)
        )

    def test_primary_copy_value(self):
        # p=1/2, n=2: (1/2)(1 + 1/2)/2 = 3/8.
        assert primary_copy_availability(2, Fraction(1)) == Fraction(3, 8)

    def test_chain_for_dispatch(self):
        assert chain_for("hybrid", 5).name == "hybrid[n=5]"
        assert chain_for("modified-hybrid", 5).name == "hybrid[n=5]"
        with pytest.raises(ChainError):
            chain_for("primary-copy", 5)


class TestPrimarySiteChain:
    def test_matches_closed_form_exactly(self):
        from repro.markov import (
            primary_site_voting_availability,
            primary_site_voting_chain,
        )

        for n in (2, 4, 5, 6):
            chain = primary_site_voting_chain(n)
            for ratio in (Fraction(1, 2), Fraction(3)):
                assert chain.availability_exact(
                    ratio
                ) == primary_site_voting_availability(n, ratio)

    def test_state_count_is_2n(self):
        from repro.markov import primary_site_voting_chain

        for n in (2, 4, 6):
            assert primary_site_voting_chain(n).size == 2 * n

    def test_tie_states_weighted_only_with_primary(self):
        from repro.markov import primary_site_voting_chain

        chain = primary_site_voting_chain(4)
        assert chain.weight((2, 1)) == Fraction(2, 4)
        assert chain.weight((2, 0)) == 0

    def test_matches_derived_chain(self):
        from repro.core import make_protocol
        from repro.markov import derive_chain, primary_site_voting_chain
        from repro.types import site_names

        derived = derive_chain(make_protocol("primary-site-voting", site_names(4)))
        hand = primary_site_voting_chain(4)
        for ratio in (0.5, 1.0, 3.0):
            assert abs(derived.availability(ratio) - hand.availability(ratio)) < 1e-12

    def test_too_few_sites_rejected(self):
        from repro.markov import primary_site_voting_chain

        with pytest.raises(ChainError):
            primary_site_voting_chain(1)
