"""Tests for the unified availability API (numeric/exact/symbolic)."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.markov import (
    ANALYTIC_PROTOCOLS,
    availability,
    availability_exact,
    availability_symbolic,
    normalized_availability,
    up_probability,
)


class TestDispatch:
    def test_all_analytic_protocols_answer(self):
        for name in ANALYTIC_PROTOCOLS:
            value = availability(name, 5, 1.0)
            assert 0.0 < value < 1.0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(AnalysisError):
            availability("paxos", 5, 1.0)


class TestConsistencyAcrossPrecisions:
    @pytest.mark.parametrize("name", ANALYTIC_PROTOCOLS)
    def test_exact_equals_numeric(self, name):
        for ratio in (Fraction(1, 2), Fraction(3), Fraction(10)):
            exact = availability_exact(name, 5, ratio)
            numeric = availability(name, 5, float(ratio))
            assert float(exact) == pytest.approx(numeric, abs=1e-9)

    @pytest.mark.parametrize("name", ["voting", "dynamic", "hybrid", "primary-copy"])
    def test_symbolic_equals_exact(self, name):
        f = availability_symbolic(name, 4)
        for ratio in (Fraction(1, 3), Fraction(2), Fraction(7)):
            assert f(ratio) == availability_exact(name, 4, ratio)

    def test_symbolic_static_forms(self):
        # voting n=1 is r/(1+r).
        from repro.ratfunc import RationalFunction, X

        assert availability_symbolic("voting", 1) == RationalFunction(X, X + 1)


class TestShapes:
    def test_availability_increases_with_ratio(self):
        for name in ANALYTIC_PROTOCOLS:
            values = [availability(name, 5, r) for r in (0.2, 0.5, 1, 2, 5, 20)]
            assert values == sorted(values), name

    def test_availability_bounded_by_up_probability(self):
        # No algorithm beats P(the arrival site is up).
        for name in ANALYTIC_PROTOCOLS:
            for ratio in (0.5, 2.0, 10.0):
                assert availability(name, 5, ratio) <= up_probability(ratio) + 1e-12

    def test_high_ratio_approaches_up_probability(self):
        for name in ("voting", "dynamic", "dynamic-linear", "hybrid"):
            ratio = 200.0
            assert availability(name, 5, ratio) == pytest.approx(
                up_probability(ratio), abs=1e-3
            )

    def test_theorem2_hybrid_beats_dynamic(self):
        for n in (3, 5, 8, 12):
            for ratio in (0.2, 1.0, 5.0):
                assert availability("hybrid", n, ratio) > availability(
                    "dynamic", n, ratio
                )

    def test_voting_beats_dynamic_at_three_sites(self):
        # The paper: with exactly three sites ordinary voting has greater
        # availability than dynamic voting (for reasonable ratios).
        for ratio in (1.0, 2.0, 5.0):
            assert availability("voting", 3, ratio) > availability(
                "dynamic", 3, ratio
            )

    def test_dynamic_linear_beats_voting_at_four_plus_sites(self):
        for n in (4, 5, 7):
            for ratio in (1.0, 3.0):
                assert availability("dynamic-linear", n, ratio) > availability(
                    "voting", n, ratio
                )

    def test_hybrid_equals_voting_for_three_sites(self):
        # With n = 3 the hybrid *is* static two-of-three voting (its trio
        # is the whole site set), so their availabilities coincide.
        for ratio in (Fraction(1, 2), Fraction(2), Fraction(9)):
            assert availability_exact("hybrid", 3, ratio) == availability_exact(
                "voting", 3, ratio
            )

    def test_primary_copy_trails_voting_at_reasonable_ratios(self):
        # (At very small ratios the relation flips: when most sites are
        # down, needing one specific site beats needing three of five.)
        for ratio in (1.0, 2.0, 4.0, 10.0):
            assert availability("primary-copy", 5, ratio) < availability(
                "voting", 5, ratio
            )


class TestNormalised:
    def test_normalisation(self):
        value = availability("hybrid", 5, 2.0)
        assert normalized_availability("hybrid", 5, 2.0) == pytest.approx(
            value / (2.0 / 3.0)
        )

    def test_normalised_at_most_one(self):
        for name in ("voting", "dynamic", "dynamic-linear", "hybrid"):
            for ratio in (0.3, 1.0, 5.0):
                assert normalized_availability(name, 5, ratio) <= 1.0 + 1e-12

    def test_up_probability_exact(self):
        assert up_probability(Fraction(3)) == Fraction(3, 4)
