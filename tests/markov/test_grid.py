"""Batched grid solves and the symbolic Horner fast path.

The docs/PERFORMANCE.md contract: every grid entry point agrees with the
per-point reference to near machine precision, and the metric counters
prove which code path ran (one batched stacked solve -- or one Horner
sweep -- per protocol, never one linear solve per grid point).
"""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError, ChainError
from repro.markov import (
    ANALYTIC_PROTOCOLS,
    availability,
    availability_exact,
    availability_grid,
    availability_symbolic,
    chain_for,
    clear_symbolic_cache,
    symbolic_cached,
)
from repro.obs.metrics import MetricsRegistry, use

GRID = [0.1 * i for i in range(1, 41)]


@pytest.fixture(autouse=True)
def _fresh_symbolic_cache():
    clear_symbolic_cache()
    yield
    clear_symbolic_cache()


class TestChainGrid:
    @pytest.mark.parametrize("protocol", ["dynamic", "dynamic-linear", "hybrid"])
    @pytest.mark.parametrize("n", [3, 5])
    def test_batched_matches_per_point(self, protocol, n):
        chain = chain_for(protocol, n)
        batched = chain.availability_grid(GRID)
        for ratio, value in zip(GRID, batched):
            assert abs(float(value) - chain.availability(ratio)) <= 1e-12

    def test_steady_state_grid_rows_are_distributions(self):
        chain = chain_for("hybrid", 5)
        distributions = chain.steady_state_grid([0.5, 1.0, 2.0])
        assert distributions.shape == (3, chain.size)
        for row in distributions:
            assert abs(float(row.sum()) - 1.0) <= 1e-12
            assert float(row.min()) >= -1e-15

    def test_empty_grid_rejected(self):
        with pytest.raises(ChainError):
            chain_for("hybrid", 3).availability_grid([])

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(ChainError):
            chain_for("hybrid", 3).availability_grid([1.0, 0.0])
        with pytest.raises(ChainError):
            chain_for("hybrid", 3).steady_state_grid([-1.0])

    def test_batched_solve_metrics(self):
        registry = MetricsRegistry()
        with use(registry):
            chain_for("dynamic", 5).availability_grid(GRID)
        snapshot = registry.snapshot()
        assert snapshot["markov.solve.batched"]["value"] == 1
        assert snapshot["markov.solve.grid_size"]["count"] == 1
        assert snapshot["markov.solve.grid_size"]["sum"] == len(GRID)


class TestUnifiedGrid:
    @pytest.mark.parametrize("protocol", ANALYTIC_PROTOCOLS)
    def test_grid_matches_per_point(self, protocol):
        values = availability_grid(protocol, 5, GRID, prefer_symbolic=False)
        for ratio, value in zip(GRID, values):
            assert abs(value - availability(protocol, 5, ratio)) <= 1e-12

    def test_empty_grid_rejected(self):
        with pytest.raises(AnalysisError):
            availability_grid("voting", 3, [])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(AnalysisError):
            availability_grid("quorum-of-one", 3, [1.0])

    def test_horner_fast_path_matches_numeric(self):
        availability_symbolic("hybrid", 5)  # populate the cache
        assert symbolic_cached("hybrid", 5)
        horner = availability_grid("hybrid", 5, GRID, prefer_symbolic=True)
        numeric = availability_grid("hybrid", 5, GRID, prefer_symbolic=False)
        for a, b in zip(horner, numeric):
            assert abs(a - b) <= 1e-9

    def test_horner_records_counter_not_batched(self):
        availability_symbolic("dynamic", 4)
        registry = MetricsRegistry()
        with use(registry):
            availability_grid("dynamic", 4, GRID, prefer_symbolic=True)
        snapshot = registry.snapshot()
        assert snapshot["markov.solve.horner"]["value"] == 1
        assert "markov.solve.batched" not in snapshot
        assert snapshot["markov.solve.grid_size"]["sum"] == len(GRID)

    def test_cold_cache_prefers_batched_over_symbolic_solve(self):
        # prefer_symbolic must never trigger an expensive symbolic solve.
        assert not symbolic_cached("hybrid", 5)
        registry = MetricsRegistry()
        with use(registry):
            availability_grid("hybrid", 5, [0.5, 1.0], prefer_symbolic=True)
        assert registry.snapshot()["markov.solve.batched"]["value"] == 1
        assert not symbolic_cached("hybrid", 5)


class TestFloatClosedForms:
    @pytest.mark.parametrize(
        "protocol", ["voting", "primary-site-voting", "primary-copy"]
    )
    @pytest.mark.parametrize("n", [3, 4, 5, 7])
    def test_float_form_matches_exact(self, protocol, n):
        for ratio in (Fraction(1, 10), Fraction(1), Fraction(5, 2), Fraction(20)):
            exact = float(availability_exact(protocol, n, ratio))
            fast = availability(protocol, n, float(ratio))
            assert abs(fast - exact) <= 1e-12

    def test_closed_form_grid_issues_no_solves(self):
        registry = MetricsRegistry()
        with use(registry):
            values = availability_grid("voting", 5, GRID)
        assert len(values) == len(GRID)
        solves = [k for k in registry.snapshot() if k.startswith("markov.solve")]
        assert solves == []
