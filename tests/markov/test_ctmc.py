"""Unit tests for the ChainSpec CTMC machinery."""

from fractions import Fraction

import pytest

from repro.errors import ChainError
from repro.markov import Arc, ChainSpec


def two_state(ratio_weighted=True):
    """Up/down single-site chain: up --lambda--> down --mu--> up."""
    weights = {"up": Fraction(1)} if ratio_weighted else {}
    return ChainSpec(
        "two-state",
        ["up", "down"],
        [Arc("up", "down", failures=1), Arc("down", "up", repairs=1)],
        weights,
    )


class TestValidation:
    def test_duplicate_states_rejected(self):
        with pytest.raises(ChainError):
            ChainSpec("bad", ["a", "a"], [Arc("a", "a", failures=1)], {})

    def test_self_loop_rejected(self):
        with pytest.raises(ChainError):
            Arc("a", "a", failures=1)

    def test_zero_rate_arc_rejected(self):
        with pytest.raises(ChainError):
            Arc("a", "b")

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ChainError):
            Arc("a", "b", failures=-1)

    def test_unknown_state_in_arc_rejected(self):
        with pytest.raises(ChainError):
            ChainSpec("bad", ["a"], [Arc("a", "b", failures=1)], {})

    def test_disconnected_chain_rejected(self):
        with pytest.raises(ChainError, match="irreducible"):
            ChainSpec(
                "bad",
                ["a", "b", "c"],
                [Arc("a", "b", failures=1), Arc("b", "a", repairs=1)],
                {},
            )

    def test_one_way_chain_rejected(self):
        with pytest.raises(ChainError, match="irreducible"):
            ChainSpec(
                "bad",
                ["a", "b"],
                [Arc("a", "b", failures=1)],
                {},
            )

    def test_out_of_range_weight_rejected(self):
        with pytest.raises(ChainError):
            ChainSpec(
                "bad",
                ["a", "b"],
                [Arc("a", "b", failures=1), Arc("b", "a", repairs=1)],
                {"a": Fraction(2)},
            )

    def test_parallel_arcs_merge(self):
        chain = ChainSpec(
            "merge",
            ["a", "b"],
            [
                Arc("a", "b", failures=1),
                Arc("a", "b", repairs=2),
                Arc("b", "a", repairs=1),
            ],
            {},
        )
        assert chain.rate("a", "b") == (1, 2)


class TestSteadyState:
    def test_two_state_closed_form(self):
        chain = two_state()
        # pi(up) = mu / (lambda + mu) = r / (1 + r).
        for ratio in (0.5, 1.0, 4.0):
            pi = chain.steady_state(ratio)
            assert pi["up"] == pytest.approx(ratio / (1 + ratio))
            assert pi["down"] == pytest.approx(1 / (1 + ratio))

    def test_probabilities_sum_to_one(self):
        chain = two_state()
        pi = chain.steady_state(2.7)
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_exact_matches_numeric(self):
        chain = two_state()
        exact = chain.steady_state_exact(Fraction(3, 2))
        numeric = chain.steady_state(1.5)
        for state in chain.states:
            assert float(exact[state]) == pytest.approx(numeric[state], abs=1e-12)

    def test_exact_is_exact(self):
        chain = two_state()
        exact = chain.steady_state_exact(Fraction(1, 3))
        assert exact["up"] == Fraction(1, 4)

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(ChainError):
            two_state().steady_state(0.0)

    def test_symbolic_matches_exact(self):
        chain = two_state()
        symbolic = chain.steady_state_symbolic()
        for ratio in (Fraction(1, 2), Fraction(5)):
            for state in chain.states:
                assert symbolic[state](ratio) == chain.steady_state_exact(ratio)[state]


class TestAvailability:
    def test_two_state_availability_is_up_probability(self):
        chain = two_state()
        assert chain.availability(3.0) == pytest.approx(0.75)

    def test_availability_exact(self):
        chain = two_state()
        assert chain.availability_exact(Fraction(3)) == Fraction(3, 4)

    def test_availability_symbolic(self):
        chain = two_state()
        f = chain.availability_symbolic()
        assert f(Fraction(3)) == Fraction(3, 4)
        # r / (1 + r) exactly:
        from repro.ratfunc import RationalFunction, X

        assert f == RationalFunction(X, X + 1)

    def test_unweighted_chain_has_zero_availability(self):
        chain = two_state(ratio_weighted=False)
        assert chain.availability(1.0) == 0.0

    def test_generator_rows_sum_to_zero(self):
        import numpy as np

        q = two_state().generator_matrix(1.0, 2.0)
        assert np.allclose(q.sum(axis=1), 0.0)
